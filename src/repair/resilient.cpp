#include "repair/resilient.h"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "check/scheduler.h"
#include "repair/executor_data.h"
#include "repair/lowering.h"
#include "repair/plan.h"
#include "simnet/simnet.h"
#include "util/contracts.h"
#include "util/units.h"
#include "verify/plan_verifier.h"

namespace rpr::repair {

namespace {

constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();

/// One banked partial sum: `value` equals XOR over `terms` of
/// coeff * block, resident at `node`, exposed to plans as pseudo stripe
/// slot `slot`. Partials may live away from the destination — a partition
/// survivor's rack aggregate stays banked at the helper that built it.
struct BankedPartial {
  rs::Block value;
  LeafTerms terms;
  topology::NodeId node = 0;
  std::size_t slot = kNoSlot;
};

/// Session state for one outstanding equation (one failed block).
struct EqState {
  std::size_t failed_block = 0;
  /// Terms still to be fetched from their storage nodes.
  LeafTerms remaining;
  /// Partial sums already accumulated somewhere alive.
  std::vector<BankedPartial> partials;
  topology::NodeId destination = 0;
  bool with_matrix = false;
  /// Cross-rack shape for the next remainder plan; switched when the
  /// destination is relocated (recovery rack died or cannot commit).
  RemainderScheme scheme = RemainderScheme::kPipeline;
  bool done = false;
  rs::Block result;
};

void drop_zero_terms(LeafTerms& terms) {
  std::erase_if(terms, [](const auto& kv) { return kv.second == 0; });
}

/// Banks every reusable finished value of the failed attempt into the
/// equation's partial set: a value at any alive node is folded in when its
/// leaf contributions exactly match a subset of the outstanding terms
/// (including prior partials via their pseudo slots), leaves disjoint
/// across accepted values. Accepted values merge per resident node into
/// one partial each. Returns how many values were folded.
std::size_t fold_finished_values(
    EqState& s, const RepairPlan& plan,
    const std::vector<LeafTerms>& contrib,
    const std::vector<std::pair<OpId, rs::Block>>& finished,
    const std::set<topology::NodeId>& dead) {
  // What is still owed, with every existing partial appearing as one more
  // pseudo term.
  LeafTerms owed = s.remaining;
  std::map<std::size_t, std::size_t> partial_of_slot;
  for (std::size_t i = 0; i < s.partials.size(); ++i) {
    if (s.partials[i].slot == kNoSlot) continue;
    owed[s.partials[i].slot] = 1;
    partial_of_slot[s.partials[i].slot] = i;
  }

  // Candidates: finished values on alive nodes. Destination-resident
  // values first, then largest leaf set, so one big intermediate beats the
  // reads it was built from and the destination keeps priority.
  std::vector<const std::pair<OpId, rs::Block>*> candidates;
  for (const auto& f : finished) {
    if (dead.count(plan.ops[f.first].node) != 0) continue;
    if (!contrib[f.first].empty()) candidates.push_back(&f);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](const auto* a, const auto* b) {
              const bool da = plan.ops[a->first].node == s.destination;
              const bool db = plan.ops[b->first].node == s.destination;
              if (da != db) return da;
              const std::size_t ca = contrib[a->first].size();
              const std::size_t cb = contrib[b->first].size();
              return ca != cb ? ca > cb : a->first < b->first;
            });

  std::set<std::size_t> covered;
  std::vector<const std::pair<OpId, rs::Block>*> accepted;
  for (const auto* cand : candidates) {
    const LeafTerms& leaves = contrib[cand->first];
    bool usable = true;
    for (const auto& [leaf, coeff] : leaves) {
      const auto it = owed.find(leaf);
      if (it == owed.end() || it->second != coeff ||
          covered.count(leaf) != 0) {
        usable = false;
        break;
      }
    }
    if (!usable) continue;
    for (const auto& [leaf, coeff] : leaves) {
      (void)coeff;
      covered.insert(leaf);
    }
    accepted.push_back(cand);
  }
  // Oracle hook: `usable` finished values matched outstanding terms; every
  // one of them must be folded into the banked partial set. The kDropBank
  // mutation discards them here so the checker's detection of a lost bank
  // can itself be tested.
  const std::size_t usable = accepted.size();
  if (check::mutated(check::Mutation::kDropBank)) accepted.clear();
  check::observe(check::Event{check::EventKind::kBankFold, 0, s.failed_block,
                              usable, accepted.size(), false});
  if (accepted.empty()) return 0;

  // One new partial per resident node: XOR of the accepted values there,
  // its term set the union of the real leaves they cover. An accepted
  // value whose leaves include a prior partial's slot absorbs that partial
  // (its bytes are already inside the value).
  std::map<topology::NodeId, BankedPartial> grouped;
  for (const auto* cand : accepted) {
    const topology::NodeId node = plan.ops[cand->first].node;
    BankedPartial& g = grouped[node];
    g.node = node;
    if (g.value.empty()) g.value.assign(cand->second.size(), 0);
    for (std::size_t i = 0; i < g.value.size(); ++i) {
      g.value[i] ^= cand->second[i];
    }
    for (const auto& [leaf, coeff] : contrib[cand->first]) {
      const auto pit = partial_of_slot.find(leaf);
      if (pit != partial_of_slot.end()) {
        for (const auto& [b, c] : s.partials[pit->second].terms) {
          g.terms[b] ^= c;
        }
      } else {
        g.terms[leaf] ^= coeff;
      }
    }
    drop_zero_terms(g.terms);
  }

  // Prior partials: absorbed ones drop; a survivor co-located with a new
  // group XOR-merges into it; the rest carry over untouched.
  std::vector<BankedPartial> next;
  for (auto& p : s.partials) {
    if (p.slot != kNoSlot && covered.count(p.slot) != 0) continue;
    const auto git = grouped.find(p.node);
    if (git != grouped.end()) {
      BankedPartial& g = git->second;
      for (std::size_t i = 0; i < g.value.size(); ++i) {
        g.value[i] ^= p.value[i];
      }
      for (const auto& [b, c] : p.terms) g.terms[b] ^= c;
      drop_zero_terms(g.terms);
    } else {
      next.push_back(std::move(p));
    }
  }
  for (auto& [node, g] : grouped) {
    (void)node;
    next.push_back(std::move(g));
  }

  // Covered real terms move out of the outstanding equation.
  for (const std::size_t leaf : covered) s.remaining.erase(leaf);
  s.partials = std::move(next);
  return accepted.size();
}

topology::NodeId pick_new_destination(
    const topology::Cluster& cluster, topology::RackId preferred_rack,
    const std::set<topology::NodeId>& avoid,
    const std::vector<EqState>& eqs, const topology::Placement& placement,
    std::size_t total_blocks) {
  auto taken = [&](topology::NodeId node) {
    if (avoid.count(node) != 0) return true;
    for (const auto& s : eqs) {
      if (s.destination == node) return true;
    }
    for (std::size_t b = 0; b < total_blocks; ++b) {
      if (placement.node_of(b) == node) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < cluster.nodes_per_rack(); ++i) {
    const topology::NodeId node =
        preferred_rack * cluster.nodes_per_rack() + i;
    if (!taken(node)) return node;
  }
  for (topology::NodeId node = 0; node < cluster.total_nodes(); ++node) {
    if (!taken(node)) return node;
  }
  throw std::runtime_error(
      "execute_resilient: no healthy replacement node left");
}

/// The always-on verification gate: online by default, and RPR_VERIFY_PLANS
/// additionally forces the full uncached algebraic fold.
bool verification_on() {
  return verify::online_verify_enabled() || verify::verify_plans_enabled();
}

}  // namespace

ResilientOutcome execute_resilient(const RepairProblem& problem,
                                   const Planner& planner,
                                   const AttemptFn& attempt,
                                   std::span<const rs::Block> stripe,
                                   const ResilientOptions& opts) {
  if (problem.code == nullptr || problem.placement == nullptr) {
    throw std::invalid_argument("execute_resilient: problem not specified");
  }
  const rs::RSCode& code = *problem.code;
  const topology::Placement& placement = *problem.placement;
  const topology::Cluster& cluster = placement.cluster();
  const std::size_t total = code.config().total();

  const PlannedRepair planned = planner.plan(problem);

  // Online verification of the initial plan, whenever the planner's name
  // maps to a scheme with a closed-form traffic prediction. The algebraic
  // fold runs once per distinct plan structure (fingerprint cache);
  // topology and conservation are checked every time.
  if (verification_on()) {
    const std::string name = planner.name();
    std::optional<Scheme> scheme;
    if (name == "rpr") {
      scheme = Scheme::kRpr;
    } else if (name == "rpr-chained") {
      scheme = Scheme::kRprChained;
    } else if (name == "car") {
      scheme = Scheme::kCar;
    } else if (name == "traditional") {
      scheme = Scheme::kTraditional;
    }
    if (scheme.has_value()) {
      const bool skip =
          !verify::verify_plans_enabled() &&
          verify::algebra_cache_check_and_insert(
              verify::plan_fingerprint(planned.plan, planned.outputs));
      verify::throw_if_violated(
          verify::verify_planned_repair(planned, problem, *scheme, skip),
          "initial " + name + " plan");
    }
  }

  ResilientOutcome out;
  out.used_decoding_matrix = planned.used_decoding_matrix;
  out.destinations = problem.replacements;

  std::vector<EqState> eqs;
  eqs.reserve(planned.equations.size());
  for (std::size_t e = 0; e < planned.equations.size(); ++e) {
    const rs::RepairEquation& eq = planned.equations[e];
    EqState s;
    s.failed_block = eq.failed_block;
    for (std::size_t i = 0; i < eq.sources.size(); ++i) {
      if (eq.coefficients[i] != 0) s.remaining[eq.sources[i]] =
          eq.coefficients[i];
    }
    s.destination = problem.replacements[e];
    s.with_matrix = planned.used_decoding_matrix;
    eqs.push_back(std::move(s));
  }

  std::set<std::size_t> unusable(problem.failed.begin(), problem.failed.end());
  std::set<topology::NodeId> dead = opts.unavailable;
  /// Latest permanent partition's per-node side map (empty = none seen).
  std::vector<int> perm_side;

  RepairPlan cur_plan = planned.plan;
  std::vector<OpId> cur_outputs = planned.outputs;
  std::vector<std::size_t> eq_of_output(eqs.size());
  for (std::size_t i = 0; i < eqs.size(); ++i) eq_of_output[i] = i;
  std::vector<rs::Block> ext_stripe(stripe.begin(), stripe.end());

  const auto salvage_throw = [&]() {
    std::size_t values = 0;
    std::uint64_t bytes = 0;
    std::ostringstream os;
    os << "re-plan budget (" << opts.max_replans << ") exhausted after "
       << out.replans << " re-plan(s);";
    for (const EqState& s : eqs) {
      if (s.done) {
        os << " b" << s.failed_block << ": rebuilt;";
        continue;
      }
      values += s.partials.size();
      std::uint64_t eq_bytes = 0;
      for (const auto& p : s.partials) eq_bytes += p.value.size();
      bytes += eq_bytes;
      os << " b" << s.failed_block << ": " << s.remaining.size()
         << " term(s) outstanding, " << s.partials.size()
         << " banked partial(s), " << eq_bytes << " byte(s) salvageable";
      for (const auto& p : s.partials) os << " @node" << p.node;
      os << ";";
    }
    throw ReplanBudgetExhausted(out.replans, values, bytes, os.str());
  };

  for (std::size_t round = 0;; ++round) {
    check::point(check::PointKind::kReplan, round, 0, "resilient.attempt");
    const AttemptOutcome a = attempt(cur_plan, cur_outputs, ext_stripe);
    out.retries += a.retries;
    out.faults_injected += a.faults_injected;
    out.total_time_s += a.elapsed_s;
    out.cross_rack_bytes += a.cross_rack_bytes;
    out.inner_rack_bytes += a.inner_rack_bytes;
    if (opts.probe.metrics && a.retries > 0) {
      opts.probe.metrics->counter("repair.retries").add(a.retries);
    }
    if (opts.probe.metrics && a.faults_injected > 0) {
      opts.probe.metrics->counter("repair.faults_injected")
          .add(a.faults_injected);
    }

    if (a.completed) {
      RPR_INVARIANT(a.outputs.size() == cur_outputs.size(),
                    "a completed attempt delivers every requested output");
      for (std::size_t i = 0; i < cur_outputs.size(); ++i) {
        EqState& s = eqs[eq_of_output[i]];
        s.result = a.outputs[i];
        s.done = true;
      }
      break;
    }

    if (!a.partitioned && a.dead_node == fault::kNoNode) {
      throw std::runtime_error(
          "execute_resilient: attempt aborted without naming a dead node");
    }
    if (round >= opts.max_replans) {
      // Budget gone — but the aborting attempt's finished work still counts.
      // Bank it (and drop partials stranded on the casualties) so the
      // salvage report describes exactly what a future session can reuse.
      if (!a.partitioned) {
        for (const auto n : a.dead_nodes) dead.insert(n);
        if (a.dead_nodes.empty()) dead.insert(a.dead_node);
      }
      const auto contrib = leaf_contributions(cur_plan);
      for (std::size_t i = 0; i < cur_outputs.size(); ++i) {
        EqState& s = eqs[eq_of_output[i]];
        for (const auto& f : a.finished) {
          if (f.first == cur_outputs[i]) {
            s.result = f.second;
            s.done = true;
            break;
          }
        }
      }
      for (EqState& s : eqs) {
        if (s.done) continue;
        for (auto it = s.partials.begin(); it != s.partials.end();) {
          if (dead.count(it->node) != 0) {
            for (const auto& [b, c] : it->terms) s.remaining[b] ^= c;
            it = s.partials.erase(it);
          } else {
            ++it;
          }
        }
        drop_zero_terms(s.remaining);
        check::point(check::PointKind::kBank, s.failed_block, 0,
                     "resilient.bank");
        fold_finished_values(s, cur_plan, contrib, a.finished, dead);
      }
      salvage_throw();
    }
    ++out.replans;
    ++out.faults_injected;

    const bool heal_expected = a.partitioned && a.heal_wait_s >= 0.0;
    std::vector<topology::NodeId> casualties;
    if (!a.partitioned) {
      casualties = a.dead_nodes;
      if (casualties.empty()) casualties.push_back(a.dead_node);
      for (const auto n : casualties) dead.insert(n);
    } else if (heal_expected) {
      ++out.partition_waits;
    } else if (!a.partition_side.empty()) {
      perm_side = a.partition_side;
    }

    if (opts.probe.metrics) {
      opts.probe.metrics->counter("repair.replans").increment();
      opts.probe.metrics->counter("repair.faults_injected").increment();
      if (a.partitioned) {
        opts.probe.metrics->counter("repair.partition_aborts").increment();
      }
    }
    if (opts.probe.trace) {
      obs::Span span;
      if (a.partitioned) {
        span.name = heal_expected
                        ? "replan (partition, waiting " +
                              std::to_string(a.heal_wait_s) + "s for heal)"
                        : "replan (partition, permanent: rerouting)";
        span.track = 0;
      } else if (casualties.size() > 1) {
        span.name = "replan (" + std::to_string(casualties.size()) +
                    " nodes lost, failure domain)";
        span.track = a.dead_node;
      } else {
        span.name = "replan (node " + std::to_string(a.dead_node) + " lost)";
        span.track = a.dead_node;
      }
      span.category = "replan";
      span.start_ns = static_cast<std::int64_t>(out.total_time_s * 1e9);
      span.dur_ns = 0;
      opts.probe.trace->add_span(std::move(span));
    }

    // Every block on a dead node is gone for good. Partitioned helpers are
    // NOT dead: their blocks stay candidates (usable after heal, or
    // near-side sources under a permanent split).
    for (std::size_t b = 0; b < total; ++b) {
      if (dead.count(placement.node_of(b)) != 0) unusable.insert(b);
    }

    // An output that finished before the failure is simply done — its bytes
    // were delivered at a (still alive) destination.
    const auto contrib = leaf_contributions(cur_plan);
    for (std::size_t i = 0; i < cur_outputs.size(); ++i) {
      EqState& s = eqs[eq_of_output[i]];
      for (const auto& f : a.finished) {
        if (f.first == cur_outputs[i]) {
          s.result = f.second;
          s.done = true;
          break;
        }
      }
    }

    std::size_t next_round_index = 0;
    RepairPlan next_plan;
    next_plan.block_size = problem.block_size;
    std::vector<OpId> next_outputs;
    std::vector<std::size_t> next_eq_of_output;
    std::vector<verify::RemainderCheck> audit;
    ext_stripe.assign(stripe.begin(), stripe.end());

    for (std::size_t e = 0; e < eqs.size(); ++e) {
      EqState& s = eqs[e];
      if (s.done) continue;

      // Partials on dead nodes are gone: their terms go back outstanding.
      for (auto it = s.partials.begin(); it != s.partials.end();) {
        if (dead.count(it->node) != 0) {
          for (const auto& [b, c] : it->terms) s.remaining[b] ^= c;
          it = s.partials.erase(it);
        } else {
          ++it;
        }
      }
      drop_zero_terms(s.remaining);

      // Bank freshly finished values wherever they survived — including a
      // partitioned helper's rack aggregate; unreachable is not lost.
      check::point(check::PointKind::kBank, s.failed_block, 0,
                   "resilient.bank");
      out.reused_values +=
          fold_finished_values(s, cur_plan, contrib, a.finished, dead);

      // Relocate the destination when it died or cannot commit; this is
      // the scheme-switch point — the new recovery rack may favor a
      // different cross-rack shape.
      bool relocated = false;
      if (dead.count(s.destination) != 0 ||
          opts.no_commit.count(s.destination) != 0) {
        std::set<topology::NodeId> avoid = dead;
        avoid.insert(opts.no_commit.begin(), opts.no_commit.end());
        s.destination = pick_new_destination(
            cluster, cluster.rack_of(s.destination), avoid, eqs, placement,
            total);
        out.destinations[e] = s.destination;
        relocated = true;
      }

      // A permanent fabric split: blocks and partials on the far side of
      // this equation's destination are unreachable for good — but only
      // for routing; the helpers stay alive and undeclared-lost.
      std::set<std::size_t> eq_unusable = unusable;
      if (!perm_side.empty()) {
        const int near = perm_side[s.destination];
        for (auto it = s.partials.begin(); it != s.partials.end();) {
          if (perm_side[it->node] != near) {
            for (const auto& [b, c] : it->terms) s.remaining[b] ^= c;
            it = s.partials.erase(it);
          } else {
            ++it;
          }
        }
        drop_zero_terms(s.remaining);
        for (std::size_t b = 0; b < total; ++b) {
          if (perm_side[placement.node_of(b)] != near) eq_unusable.insert(b);
        }
      }

      // Patch the outstanding equation around every unusable block.
      std::vector<std::size_t> bad;
      for (const auto& [b, c] : s.remaining) {
        (void)c;
        if (eq_unusable.count(b) != 0) bad.push_back(b);
      }
      for (const std::size_t b : bad) {
        substitute_source(code, s.remaining, b, eq_unusable);
        // Patched coefficients are arbitrary: the cheap XOR-only decode
        // guarantee is void, so charge the matrix path from here on.
        s.with_matrix = true;
      }

      // A destination-resident partial must take the lowest pseudo slot so
      // the recovery-rack reduction roots at the destination (the traffic
      // closed forms assume it).
      std::stable_sort(s.partials.begin(), s.partials.end(),
                       [&](const BankedPartial& x, const BankedPartial& y) {
                         return static_cast<int>(x.node == s.destination) >
                                static_cast<int>(y.node == s.destination);
                       });

      RemainderEquation req;
      req.failed_block = s.failed_block;
      req.terms = s.remaining;
      req.destination = s.destination;
      req.with_matrix = s.with_matrix;
      for (auto& p : s.partials) {
        p.slot = ext_stripe.size();
        req.partials.push_back(RemainderPartial{p.slot, p.node});
        ext_stripe.push_back(p.value);
      }
      if (relocated && !req.terms.empty()) {
        const RemainderScheme chosen =
            choose_remainder_scheme(placement, req);
        if (chosen != s.scheme) {
          ++out.scheme_switches;
          s.scheme = chosen;
          if (opts.probe.metrics) {
            opts.probe.metrics->counter("repair.scheme_switches").increment();
          }
        }
      }
      req.scheme = s.scheme;

      next_outputs.push_back(plan_remainder(next_plan, placement, req,
                                            opts.planner, next_round_index++));
      next_eq_of_output.push_back(e);
      verify::RemainderCheck check;
      check.eq = req;
      check.output = next_outputs.back();
      for (const auto& p : s.partials) {
        check.partial_decompositions[p.slot] = p.terms;
      }
      audit.push_back(std::move(check));
    }

    if (!next_outputs.empty() && verification_on()) {
      const bool skip =
          !verify::verify_plans_enabled() &&
          verify::algebra_cache_check_and_insert(
              verify::plan_fingerprint(next_plan, next_outputs));
      verify::throw_if_violated(
          verify::verify_remainder_plan(next_plan, placement, code, audit,
                                        unusable, skip),
          "mid-repair re-plan, round " + std::to_string(round));
    }

    if (next_outputs.empty()) break;  // everything finished before the fault

    // Ride out a healing partition before retrying: the banked partials of
    // unreachable-but-alive helpers stay valid, nothing is substituted.
    if (heal_expected && opts.wait_for_heal) {
      opts.wait_for_heal(a.heal_wait_s);
    }

    cur_plan = std::move(next_plan);
    cur_outputs = std::move(next_outputs);
    eq_of_output = std::move(next_eq_of_output);
  }

  out.outputs.resize(eqs.size());
  for (std::size_t e = 0; e < eqs.size(); ++e) {
    if (!eqs[e].done) {
      throw std::logic_error("execute_resilient: equation left unfinished");
    }
    out.outputs[e] = std::move(eqs[e].result);
  }
  return out;
}

namespace {

/// Discrete-event chaos engine: executes plans on SimNetwork under a fault
/// schedule, on a session-wide simulated clock.
class SimChaosEngine {
 public:
  SimChaosEngine(const topology::Cluster& cluster,
                 const topology::NetworkParams& net,
                 const fault::FaultSchedule& faults)
      : cluster_(cluster), net_(net), faults_(faults) {
    // Whole-rack deaths lower to per-node kills; the cut machinery below
    // then reports the whole failure domain in one abort.
    faults_.expand_racks(cluster);
  }

  /// Advances the session clock (the driver's wait-for-heal hook).
  void advance_clock(double seconds) {
    if (seconds > 0.0) clock_s_ += seconds;
  }

  AttemptOutcome attempt(const RepairPlan& plan,
                         std::span<const OpId> outputs,
                         std::span<const rs::Block> stripe) {
    validate(plan, cluster_);

    // A healing partition active right now and cut by this plan stalls the
    // session until the fabric heals (the driver already counted the wait
    // when the previous attempt aborted).
    for (const auto& p : faults_.partitions) {
      if (!p.heals()) continue;
      const double heal_at = p.at_s + p.heal_after_s;
      if (clock_s_ >= p.at_s && clock_s_ < heal_at &&
          plan_crosses(p, plan)) {
        clock_s_ = heal_at;
      }
    }

    simnet::SimNetwork sim(cluster_, net_);
    for (const auto& st : faults_.stragglers) {
      sim.slow_node(st.node, st.factor);
      if (straggles_counted_.insert(st.node).second) ++injected_faults_;
    }
    for (const auto& d : faults_.slow_disks) {
      sim.slow_compute(d.node, d.factor);
      if (slowdisks_counted_.insert(d.node).second) ++injected_faults_;
    }

    // Shared lowering (repair/lowering.h): per-op task ranges index the
    // TaskStats back to plan ops — one task per op, or one per slice when
    // the params enable slice pipelining.
    const detail::LoweredPlan lowered =
        detail::lower_plan(sim, plan, net_.slice_size);
    const simnet::RunResult run = sim.run();

    // Earliest kill that bites this attempt: some task touching the killed
    // node would still be unfinished at the cut. Non-biting kills stay
    // pending — they bite (and are reported) the first time a plan needs
    // the node.
    const fault::KillNode* biting_kill = nullptr;
    util::SimTime kill_cut = 0;
    for (const auto& kill : faults_.kills) {
      if (dead_.count(kill.node) != 0) continue;
      const util::SimTime cut = rel_cut(kill.at_s);
      if (cut >= run.makespan) continue;
      bool touches = false;
      for (OpId id = 0; id < plan.ops.size() && !touches; ++id) {
        for (const simnet::TaskId t : lowered.slice_tasks[id]) {
          const simnet::TaskStats& st = run.tasks[t];
          if ((st.node == kill.node || st.from == kill.node) &&
              st.finish > cut) {
            touches = true;
            break;
          }
        }
      }
      if (!touches) continue;
      if (biting_kill == nullptr || cut < kill_cut) {
        biting_kill = &kill;
        kill_cut = cut;
      }
    }

    // Earliest partition that bites: a cross-cut transfer would run while
    // the split is active.
    const fault::Partition* biting_part = nullptr;
    util::SimTime part_cut = 0;
    for (const auto& p : faults_.partitions) {
      const double heal_rel_s =
          p.heals() ? (p.at_s + p.heal_after_s) - clock_s_ : -1.0;
      if (p.heals() && heal_rel_s <= 0.0) continue;  // already healed
      const util::SimTime cut = rel_cut(p.at_s);
      if (cut >= run.makespan) continue;
      const util::SimTime heal_cut =
          p.heals() ? static_cast<util::SimTime>(heal_rel_s * util::kNsPerSec)
                    : std::numeric_limits<util::SimTime>::max();
      bool bites = false;
      for (const simnet::TaskStats& st : run.tasks) {
        if (st.kind != simnet::TaskKind::kTransfer || st.from == st.node) {
          continue;
        }
        if (!p.separates(cluster_.rack_of(st.from),
                         cluster_.rack_of(st.node))) {
          continue;
        }
        if (st.finish > cut && st.start < heal_cut) {
          bites = true;
          break;
        }
      }
      if (!bites) continue;
      if (biting_part == nullptr || cut < part_cut) {
        biting_part = &p;
        part_cut = cut;
      }
    }

    AttemptOutcome a;
    a.faults_injected = injected_faults_;
    injected_faults_ = 0;

    if (biting_kill == nullptr && biting_part == nullptr) {
      a.completed = true;
      a.outputs = execute_on_data(plan, outputs, stripe);
      a.elapsed_s = util::to_sec(run.makespan);
      clock_s_ += a.elapsed_s;
      a.cross_rack_bytes = run.cross_rack_bytes;
      a.inner_rack_bytes = run.inner_rack_bytes;
      return a;
    }

    // Ties go to the kill: a node death explains more than a reachability
    // loss at the same instant.
    const bool partition_wins =
        biting_part != nullptr &&
        (biting_kill == nullptr || part_cut < kill_cut);
    const util::SimTime cut = partition_wins ? part_cut : kill_cut;
    const double cut_s = util::to_sec(cut);

    if (partition_wins) {
      a.partitioned = true;
      a.heal_wait_s =
          biting_part->heals()
              ? (biting_part->at_s + biting_part->heal_after_s) -
                    (clock_s_ + cut_s)
              : -1.0;
      a.partition_side.resize(cluster_.total_nodes(), 0);
      for (topology::NodeId n = 0; n < cluster_.total_nodes(); ++n) {
        a.partition_side[n] = biting_part->side_of(cluster_.rack_of(n));
      }
    } else {
      // Report every node dead by the cut in one abort — a TOR death takes
      // the whole rack down at once and one re-plan absorbs it.
      for (const auto& kill : faults_.kills) {
        if (dead_.count(kill.node) != 0) continue;
        if (rel_cut(kill.at_s) <= cut) {
          dead_.insert(kill.node);
          a.dead_nodes.push_back(kill.node);
        }
      }
      a.dead_node = biting_kill->node;
    }
    a.elapsed_s = cut_s;
    clock_s_ += a.elapsed_s;

    // Values fully materialized by the cut — every slice of the op landed —
    // excluding any at a dead node. Traffic is counted per slice task, so a
    // transfer interrupted mid-stream still accounts the slices that made
    // it across before the kill (a banked *value* stays all-or-nothing; the
    // real engines likewise discard partially-streamed buffers on abort).
    std::vector<OpId> done_ops;
    for (OpId id = 0; id < plan.ops.size(); ++id) {
      bool all_done = true;
      for (const simnet::TaskId t : lowered.slice_tasks[id]) {
        const simnet::TaskStats& st = run.tasks[t];
        if (st.finish > cut) {
          all_done = false;
          continue;
        }
        if (st.kind == simnet::TaskKind::kTransfer && st.from != st.node) {
          (st.cross_rack ? a.cross_rack_bytes : a.inner_rack_bytes) +=
              st.bytes;
        }
      }
      if (!all_done) continue;
      if (dead_.count(plan.ops[id].node) != 0) continue;
      done_ops.push_back(id);
    }
    const auto values = execute_on_data(plan, done_ops, stripe);
    a.finished.reserve(done_ops.size());
    for (std::size_t i = 0; i < done_ops.size(); ++i) {
      a.finished.emplace_back(done_ops[i], values[i]);
    }
    return a;
  }

 private:
  /// Engine-relative cut time of an absolute schedule time.
  [[nodiscard]] util::SimTime rel_cut(double at_s) const {
    const double rel_s = std::max(0.0, at_s - clock_s_);
    return static_cast<util::SimTime>(rel_s * util::kNsPerSec);
  }

  [[nodiscard]] bool plan_crosses(const fault::Partition& p,
                                  const RepairPlan& plan) const {
    for (const PlanOp& op : plan.ops) {
      if (op.kind != OpKind::kSend || op.from == op.node) continue;
      if (p.separates(cluster_.rack_of(op.from), cluster_.rack_of(op.node))) {
        return true;
      }
    }
    return false;
  }

  const topology::Cluster& cluster_;
  topology::NetworkParams net_;
  fault::FaultSchedule faults_;
  double clock_s_ = 0.0;
  std::set<topology::NodeId> dead_;
  std::set<topology::NodeId> straggles_counted_;
  std::set<topology::NodeId> slowdisks_counted_;
  std::size_t injected_faults_ = 0;
};

}  // namespace

ResilientOutcome simulate_resilient(const RepairProblem& problem,
                                    const Planner& planner,
                                    std::span<const rs::Block> stripe,
                                    const topology::NetworkParams& net,
                                    const fault::FaultSchedule& faults,
                                    const ResilientOptions& opts) {
  SimChaosEngine engine(problem.placement->cluster(), net, faults);
  const AttemptFn attempt = [&engine](const RepairPlan& plan,
                                      std::span<const OpId> outputs,
                                      std::span<const rs::Block> view) {
    return engine.attempt(plan, outputs, view);
  };
  ResilientOptions adapted = opts;
  if (!adapted.wait_for_heal) {
    // Simulated time: riding out a heal is one clock jump, not a sleep.
    adapted.wait_for_heal = [&engine](double s) { engine.advance_clock(s); };
  }
  return execute_resilient(problem, planner, attempt, stripe, adapted);
}

}  // namespace rpr::repair
