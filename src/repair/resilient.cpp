#include "repair/resilient.h"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>

#include "repair/executor_data.h"
#include "repair/lowering.h"
#include "repair/plan.h"
#include "simnet/simnet.h"
#include "util/contracts.h"
#include "util/units.h"
#include "verify/plan_verifier.h"

namespace rpr::repair {

namespace {

constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();

/// Session state for one outstanding equation (one failed block).
struct EqState {
  std::size_t failed_block = 0;
  /// Terms still to be fetched from their storage nodes.
  LeafTerms remaining;
  /// Terms whose contribution is already in `partial` at `destination`.
  LeafTerms banked;
  rs::Block partial;  ///< empty = no banked work
  /// Pseudo stripe slot the partial occupied in the attempted plan.
  std::size_t slot = kNoSlot;
  topology::NodeId destination = 0;
  bool with_matrix = false;
  bool done = false;
  rs::Block result;

  [[nodiscard]] bool has_partial() const { return !partial.empty(); }
};

void drop_zero_terms(LeafTerms& terms) {
  std::erase_if(terms, [](const auto& kv) { return kv.second == 0; });
}

/// Banks every reusable finished value of the failed attempt into the
/// equation's partial: a value at the destination is folded in when its
/// leaf contributions exactly match a subset of the outstanding terms
/// (including the previous round's partial via its pseudo slot), leaves
/// disjoint across accepted values. Returns how many values were folded.
std::size_t fold_finished_values(
    EqState& s, const RepairPlan& plan,
    const std::vector<LeafTerms>& contrib,
    const std::vector<std::pair<OpId, rs::Block>>& finished) {
  // What the destination still owes us, with the existing partial appearing
  // as one more pseudo term.
  LeafTerms owed = s.remaining;
  if (s.has_partial() && s.slot != kNoSlot) owed[s.slot] = 1;

  // Candidates: finished values resident at the destination, largest leaf
  // set first so one big intermediate beats the reads it was built from.
  std::vector<const std::pair<OpId, rs::Block>*> candidates;
  for (const auto& f : finished) {
    if (plan.ops[f.first].node == s.destination && !contrib[f.first].empty()) {
      candidates.push_back(&f);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](const auto* a, const auto* b) {
              const std::size_t ca = contrib[a->first].size();
              const std::size_t cb = contrib[b->first].size();
              return ca != cb ? ca > cb : a->first < b->first;
            });

  std::set<std::size_t> covered;
  std::vector<const std::pair<OpId, rs::Block>*> accepted;
  for (const auto* cand : candidates) {
    const LeafTerms& leaves = contrib[cand->first];
    bool usable = true;
    for (const auto& [leaf, coeff] : leaves) {
      const auto it = owed.find(leaf);
      if (it == owed.end() || it->second != coeff ||
          covered.count(leaf) != 0) {
        usable = false;
        break;
      }
    }
    if (!usable) continue;
    for (const auto& [leaf, coeff] : leaves) covered.insert(leaf);
    accepted.push_back(cand);
  }
  if (accepted.empty()) return 0;

  // New partial = XOR of accepted values, plus the old partial when no
  // accepted value subsumed it (its bytes are still at the destination).
  rs::Block next(accepted.front()->second.size(), 0);
  auto xor_into = [&next](const rs::Block& src) {
    for (std::size_t i = 0; i < next.size(); ++i) next[i] ^= src[i];
  };
  for (const auto* cand : accepted) xor_into(cand->second);
  const bool partial_subsumed =
      s.has_partial() && s.slot != kNoSlot && covered.count(s.slot) != 0;
  if (s.has_partial() && !partial_subsumed) xor_into(s.partial);

  // Move the covered real terms from remaining to banked.
  for (const std::size_t leaf : covered) {
    const auto it = s.remaining.find(leaf);
    if (it == s.remaining.end()) continue;  // the pseudo partial slot
    s.banked[leaf] ^= it->second;
    s.remaining.erase(it);
  }
  drop_zero_terms(s.banked);
  s.partial = std::move(next);
  return accepted.size();
}

topology::NodeId pick_new_destination(
    const topology::Cluster& cluster, topology::RackId preferred_rack,
    const std::set<topology::NodeId>& dead,
    const std::vector<EqState>& eqs, const topology::Placement& placement,
    std::size_t total_blocks) {
  auto taken = [&](topology::NodeId node) {
    if (dead.count(node) != 0) return true;
    for (const auto& s : eqs) {
      if (s.destination == node) return true;
    }
    for (std::size_t b = 0; b < total_blocks; ++b) {
      if (placement.node_of(b) == node) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < cluster.nodes_per_rack(); ++i) {
    const topology::NodeId node =
        preferred_rack * cluster.nodes_per_rack() + i;
    if (!taken(node)) return node;
  }
  for (topology::NodeId node = 0; node < cluster.total_nodes(); ++node) {
    if (!taken(node)) return node;
  }
  throw std::runtime_error(
      "execute_resilient: no healthy replacement node left");
}

}  // namespace

ResilientOutcome execute_resilient(const RepairProblem& problem,
                                   const Planner& planner,
                                   const AttemptFn& attempt,
                                   std::span<const rs::Block> stripe,
                                   const ResilientOptions& opts) {
  if (problem.code == nullptr || problem.placement == nullptr) {
    throw std::invalid_argument("execute_resilient: problem not specified");
  }
  const rs::RSCode& code = *problem.code;
  const topology::Placement& placement = *problem.placement;
  const topology::Cluster& cluster = placement.cluster();
  const std::size_t total = code.config().total();

  const PlannedRepair planned = planner.plan(problem);

  ResilientOutcome out;
  out.used_decoding_matrix = planned.used_decoding_matrix;
  out.destinations = problem.replacements;

  std::vector<EqState> eqs;
  eqs.reserve(planned.equations.size());
  for (std::size_t e = 0; e < planned.equations.size(); ++e) {
    const rs::RepairEquation& eq = planned.equations[e];
    EqState s;
    s.failed_block = eq.failed_block;
    for (std::size_t i = 0; i < eq.sources.size(); ++i) {
      if (eq.coefficients[i] != 0) s.remaining[eq.sources[i]] =
          eq.coefficients[i];
    }
    s.destination = problem.replacements[e];
    s.with_matrix = planned.used_decoding_matrix;
    eqs.push_back(std::move(s));
  }

  std::set<std::size_t> unusable(problem.failed.begin(), problem.failed.end());
  std::set<topology::NodeId> dead = opts.unavailable;

  RepairPlan cur_plan = planned.plan;
  std::vector<OpId> cur_outputs = planned.outputs;
  std::vector<std::size_t> eq_of_output(eqs.size());
  for (std::size_t i = 0; i < eqs.size(); ++i) eq_of_output[i] = i;
  std::vector<rs::Block> ext_stripe(stripe.begin(), stripe.end());

  for (std::size_t round = 0;; ++round) {
    const AttemptOutcome a = attempt(cur_plan, cur_outputs, ext_stripe);
    out.retries += a.retries;
    out.faults_injected += a.faults_injected;
    out.total_time_s += a.elapsed_s;
    out.cross_rack_bytes += a.cross_rack_bytes;
    out.inner_rack_bytes += a.inner_rack_bytes;
    if (opts.probe.metrics && a.retries > 0) {
      opts.probe.metrics->counter("repair.retries").add(a.retries);
    }
    if (opts.probe.metrics && a.faults_injected > 0) {
      opts.probe.metrics->counter("repair.faults_injected")
          .add(a.faults_injected);
    }

    if (a.completed) {
      RPR_INVARIANT(a.outputs.size() == cur_outputs.size(),
                    "a completed attempt delivers every requested output");
      for (std::size_t i = 0; i < cur_outputs.size(); ++i) {
        EqState& s = eqs[eq_of_output[i]];
        s.result = a.outputs[i];
        s.done = true;
      }
      break;
    }

    if (a.dead_node == fault::kNoNode) {
      throw std::runtime_error(
          "execute_resilient: attempt aborted without naming a dead node");
    }
    if (round >= opts.max_replans) {
      throw std::runtime_error("execute_resilient: re-plan budget exhausted");
    }
    ++out.replans;
    ++out.faults_injected;
    dead.insert(a.dead_node);
    if (opts.probe.metrics) {
      opts.probe.metrics->counter("repair.replans").increment();
      opts.probe.metrics->counter("repair.faults_injected").increment();
    }
    if (opts.probe.trace) {
      obs::Span span;
      span.name = "replan (node " + std::to_string(a.dead_node) + " lost)";
      span.category = "replan";
      span.track = a.dead_node;
      span.start_ns = static_cast<std::int64_t>(out.total_time_s * 1e9);
      span.dur_ns = 0;
      opts.probe.trace->add_span(std::move(span));
    }

    // Every block on a dead node is gone for good.
    for (std::size_t b = 0; b < total; ++b) {
      if (dead.count(placement.node_of(b)) != 0) unusable.insert(b);
    }

    // An output that finished before the failure is simply done — its bytes
    // were delivered at a (still alive) destination.
    const auto contrib = leaf_contributions(cur_plan);
    for (std::size_t i = 0; i < cur_outputs.size(); ++i) {
      EqState& s = eqs[eq_of_output[i]];
      for (const auto& f : a.finished) {
        if (f.first == cur_outputs[i]) {
          s.result = f.second;
          s.done = true;
          break;
        }
      }
    }

    std::size_t next_round_index = 0;
    RepairPlan next_plan;
    next_plan.block_size = problem.block_size;
    std::vector<OpId> next_outputs;
    std::vector<std::size_t> next_eq_of_output;
    std::vector<verify::RemainderCheck> audit;
    ext_stripe.assign(stripe.begin(), stripe.end());

    for (std::size_t e = 0; e < eqs.size(); ++e) {
      EqState& s = eqs[e];
      if (s.done) continue;

      if (dead.count(s.destination) != 0) {
        // The replacement node itself died: its partial is gone — move the
        // banked terms back into the outstanding equation and start a fresh
        // partial at a new destination.
        for (const auto& [b, c] : s.banked) s.remaining[b] ^= c;
        drop_zero_terms(s.remaining);
        s.banked.clear();
        s.partial.clear();
        s.slot = kNoSlot;
        s.destination = pick_new_destination(
            cluster, cluster.rack_of(s.destination), dead, eqs, placement,
            total);
        out.destinations[e] = s.destination;
      } else {
        out.reused_values +=
            fold_finished_values(s, cur_plan, contrib, a.finished);
      }

      // Patch the outstanding equation around every unusable block.
      std::vector<std::size_t> bad;
      for (const auto& [b, c] : s.remaining) {
        (void)c;
        if (unusable.count(b) != 0) bad.push_back(b);
      }
      for (const std::size_t b : bad) {
        substitute_source(code, s.remaining, b, unusable);
        // Patched coefficients are arbitrary: the cheap XOR-only decode
        // guarantee is void, so charge the matrix path from here on.
        s.with_matrix = true;
      }

      RemainderEquation req;
      req.failed_block = s.failed_block;
      req.terms = s.remaining;
      req.destination = s.destination;
      req.with_matrix = s.with_matrix;
      if (s.has_partial()) {
        req.has_partial = true;
        req.partial_slot = ext_stripe.size();
        s.slot = req.partial_slot;
        ext_stripe.push_back(s.partial);
      } else {
        s.slot = kNoSlot;
      }
      next_outputs.push_back(plan_remainder(next_plan, placement, req,
                                            opts.planner, next_round_index++));
      next_eq_of_output.push_back(e);
      audit.push_back(
          verify::RemainderCheck{req, next_outputs.back(), s.banked});
    }

    if (!next_outputs.empty() && verify::verify_plans_enabled()) {
      verify::throw_if_violated(
          verify::verify_remainder_plan(next_plan, placement, code, audit,
                                        unusable),
          "mid-repair re-plan, round " + std::to_string(round));
    }

    if (next_outputs.empty()) break;  // everything finished before the fault
    cur_plan = std::move(next_plan);
    cur_outputs = std::move(next_outputs);
    eq_of_output = std::move(next_eq_of_output);
  }

  out.outputs.resize(eqs.size());
  for (std::size_t e = 0; e < eqs.size(); ++e) {
    if (!eqs[e].done) {
      throw std::logic_error("execute_resilient: equation left unfinished");
    }
    out.outputs[e] = std::move(eqs[e].result);
  }
  return out;
}

namespace {

/// Discrete-event chaos engine: executes plans on SimNetwork under a fault
/// schedule, on a session-wide simulated clock.
class SimChaosEngine {
 public:
  SimChaosEngine(const topology::Cluster& cluster,
                 const topology::NetworkParams& net,
                 const fault::FaultSchedule& faults)
      : cluster_(cluster), net_(net), faults_(faults) {}

  AttemptOutcome attempt(const RepairPlan& plan,
                         std::span<const OpId> outputs,
                         std::span<const rs::Block> stripe) {
    validate(plan, cluster_);
    simnet::SimNetwork sim(cluster_, net_);
    for (const auto& st : faults_.stragglers) {
      sim.slow_node(st.node, st.factor);
      if (straggles_counted_.insert(st.node).second) ++straggler_faults_;
    }

    // Shared lowering (repair/lowering.h): per-op task ranges index the
    // TaskStats back to plan ops — one task per op, or one per slice when
    // the params enable slice pipelining.
    const detail::LoweredPlan lowered =
        detail::lower_plan(sim, plan, net_.slice_size);
    const simnet::RunResult run = sim.run();

    // Earliest kill that actually bites this attempt: some task touching the
    // killed node would still be unfinished at the cut.
    const fault::KillNode* biting = nullptr;
    util::SimTime cut = 0;
    for (const auto& kill : faults_.kills) {
      if (dead_.count(kill.node) != 0) continue;
      const double rel_s = std::max(0.0, kill.at_s - clock_s_);
      const auto kill_cut =
          static_cast<util::SimTime>(rel_s * util::kNsPerSec);
      if (kill_cut >= run.makespan) continue;
      bool touches = false;
      for (OpId id = 0; id < plan.ops.size() && !touches; ++id) {
        for (const simnet::TaskId t : lowered.slice_tasks[id]) {
          const simnet::TaskStats& st = run.tasks[t];
          if ((st.node == kill.node || st.from == kill.node) &&
              st.finish > kill_cut) {
            touches = true;
            break;
          }
        }
      }
      if (!touches) {
        // The node dies, but this plan is already past needing it.
        dead_.insert(kill.node);
        continue;
      }
      if (biting == nullptr || kill_cut < cut) {
        biting = &kill;
        cut = kill_cut;
      }
    }

    AttemptOutcome a;
    a.faults_injected = straggler_faults_;
    straggler_faults_ = 0;

    if (biting == nullptr) {
      a.completed = true;
      a.outputs = execute_on_data(plan, outputs, stripe);
      a.elapsed_s = util::to_sec(run.makespan);
      clock_s_ += a.elapsed_s;
      a.cross_rack_bytes = run.cross_rack_bytes;
      a.inner_rack_bytes = run.inner_rack_bytes;
      return a;
    }

    dead_.insert(biting->node);
    a.dead_node = biting->node;
    a.elapsed_s = util::to_sec(cut);
    clock_s_ += a.elapsed_s;

    // Values fully materialized by the cut — every slice of the op landed —
    // excluding any at a dead node. Traffic is counted per slice task, so a
    // transfer interrupted mid-stream still accounts the slices that made
    // it across before the kill (a banked *value* stays all-or-nothing; the
    // real engines likewise discard partially-streamed buffers on abort).
    std::vector<OpId> done_ops;
    for (OpId id = 0; id < plan.ops.size(); ++id) {
      bool all_done = true;
      for (const simnet::TaskId t : lowered.slice_tasks[id]) {
        const simnet::TaskStats& st = run.tasks[t];
        if (st.finish > cut) {
          all_done = false;
          continue;
        }
        if (st.kind == simnet::TaskKind::kTransfer && st.from != st.node) {
          (st.cross_rack ? a.cross_rack_bytes : a.inner_rack_bytes) +=
              st.bytes;
        }
      }
      if (!all_done) continue;
      if (dead_.count(plan.ops[id].node) != 0) continue;
      done_ops.push_back(id);
    }
    const auto values = execute_on_data(plan, done_ops, stripe);
    a.finished.reserve(done_ops.size());
    for (std::size_t i = 0; i < done_ops.size(); ++i) {
      a.finished.emplace_back(done_ops[i], values[i]);
    }
    return a;
  }

 private:
  const topology::Cluster& cluster_;
  topology::NetworkParams net_;
  fault::FaultSchedule faults_;
  double clock_s_ = 0.0;
  std::set<topology::NodeId> dead_;
  std::set<topology::NodeId> straggles_counted_;
  std::size_t straggler_faults_ = 0;
};

}  // namespace

ResilientOutcome simulate_resilient(const RepairProblem& problem,
                                    const Planner& planner,
                                    std::span<const rs::Block> stripe,
                                    const topology::NetworkParams& net,
                                    const fault::FaultSchedule& faults,
                                    const ResilientOptions& opts) {
  SimChaosEngine engine(problem.placement->cluster(), net, faults);
  const AttemptFn attempt = [&engine](const RepairPlan& plan,
                                      std::span<const OpId> outputs,
                                      std::span<const rs::Block> view) {
    return engine.attempt(plan, outputs, view);
  };
  return execute_resilient(problem, planner, attempt, stripe, opts);
}

}  // namespace rpr::repair
