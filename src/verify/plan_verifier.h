// Static repair-plan verification: prove a plan correct before it runs.
//
// A RepairPlan is the last artifact between the planners' algebra and real
// bytes on the wire; until now the only check of an emitted plan was the
// end-to-end byte comparison in tests (and `repair::validate`'s structural
// throw). The PlanVerifier lints a plan against three invariant classes:
//
//  (a) algebraic soundness — symbolically folds every read/send/combine
//      over GF(2^8) (a read contributes coeff * block, a combine
//      accumulates input_coeff * contribution) and asserts the expression
//      produced at each declared output equals the repair equation for
//      that failed block, term by term. When the codec is supplied the
//      equation itself is re-proved against the generator matrix:
//      sum_i c_i * G[src_i] must equal G[failed] row-for-row, which holds
//      iff the linear combination reconstructs the block for *every*
//      stripe content — independent of the matrix inversion that produced
//      the coefficients.
//  (b) topological soundness — every read happens on the node that
//      actually stores the block (placement-checked; pseudo partial slots
//      carry their own location), no read touches a failed/dead/corrupt
//      block, sends depart from the node holding the value, combines only
//      merge co-located values, the op graph is an acyclic DAG with no
//      use-before-produce and no orphaned intermediates.
//  (c) conservation invariants — the plan's cross- and inner-rack
//      transfer counts equal the closed-form prediction from
//      repair/analysis for the scheme that emitted it: more transfers
//      silently gives back the paper's traffic savings, fewer cannot be
//      computing the full equation.
//
// Every violation names the op index and the rack it concerns, and
// equation mismatches render a readable expected-vs-actual diff.
//
// Debug mode: with the environment variable RPR_VERIFY_PLANS set (to
// anything but "0"), every planner output and every mid-repair re-plan is
// verified before execution and a violation throws std::logic_error with
// the full report. Release binaries pay one getenv per plan when the mode
// is off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "repair/analysis.h"
#include "repair/plan.h"
#include "repair/planner.h"
#include "repair/replan.h"
#include "rs/rs_code.h"
#include "topology/placement.h"

namespace rpr::verify {

enum class InvariantClass { kAlgebraic, kTopological, kConservation, kTiming };

[[nodiscard]] const char* to_string(InvariantClass c);

inline constexpr topology::RackId kNoRack =
    std::numeric_limits<topology::RackId>::max();

struct Violation {
  InvariantClass invariant = InvariantClass::kTopological;
  /// Offending op, or kNoOp for plan-level violations.
  repair::OpId op = repair::kNoOp;
  /// Rack the violation concerns, or kNoRack when not tied to one.
  topology::RackId rack = kNoRack;
  std::string message;
};

struct VerifyReport {
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::size_t count(InvariantClass c) const;
  /// Readable multi-line listing; every line names the op index and rack.
  [[nodiscard]] std::string to_string() const;
};

class PlanVerifier {
 public:
  PlanVerifier(const repair::RepairPlan& plan,
               const topology::Cluster& cluster);

  /// Enables read-location checks (reads must happen where the block
  /// lives) and is required for conservation checks.
  PlanVerifier& with_placement(const topology::Placement& placement);

  /// Enables the generator-matrix identity proof of every output equation.
  PlanVerifier& with_code(const rs::RSCode& code);

  /// Blocks the plan must not read (failed, dead-resident, corrupt).
  PlanVerifier& forbid_blocks(const std::set<std::size_t>& blocks);

  /// Declares a pseudo stripe slot (index >= n+k): a banked partial living
  /// at `node`. `decomposition` gives its known linear combination over
  /// real blocks (used in the generator identity); empty means opaque, and
  /// the identity check is skipped for outputs referencing the slot.
  PlanVerifier& add_pseudo_slot(std::size_t slot, topology::NodeId node,
                                repair::LeafTerms decomposition = {});

  /// Declares an output: op must produce `terms` (over real + pseudo
  /// slots) for `failed_block` at `destination`.
  PlanVerifier& expect_output(repair::OpId op, std::size_t failed_block,
                              topology::NodeId destination,
                              repair::LeafTerms terms);

  /// Enables the conservation check against a closed-form prediction.
  PlanVerifier& expect_traffic(repair::analysis::PredictedTraffic expected);

  /// When the plan claims the XOR fast path (no decoding matrix), no
  /// combine may carry the matrix cost tag and every expected coefficient
  /// must be 1.
  PlanVerifier& expect_xor_only();

  /// Online fast path: skip the symbolic GF fold and generator identity
  /// (the expensive O(ops * terms) pass) while keeping every topological
  /// and conservation check. Used when a structurally identical plan's
  /// algebra already passed (plan-fingerprint cache hit).
  PlanVerifier& skip_algebra(bool skip = true);

  [[nodiscard]] VerifyReport run() const;

 private:
  struct ExpectedOutput {
    repair::OpId op = repair::kNoOp;
    std::size_t failed_block = 0;
    topology::NodeId destination = 0;
    repair::LeafTerms terms;
  };
  struct PseudoSlot {
    topology::NodeId node = 0;
    repair::LeafTerms decomposition;
  };

  void check_structure(VerifyReport& report) const;
  void check_reads(VerifyReport& report) const;
  void check_orphans(VerifyReport& report) const;
  void check_algebra(VerifyReport& report) const;
  void check_conservation(VerifyReport& report) const;

  [[nodiscard]] topology::RackId rack_of_op(repair::OpId id) const;
  /// n + k when the stripe shape is known (placement or code supplied),
  /// else 0 — which disables pseudo-slot detection.
  [[nodiscard]] std::size_t total_blocks() const;

  const repair::RepairPlan* plan_;
  const topology::Cluster* cluster_;
  const topology::Placement* placement_ = nullptr;
  const rs::RSCode* code_ = nullptr;
  std::set<std::size_t> forbidden_;
  std::map<std::size_t, PseudoSlot> pseudo_;
  std::vector<ExpectedOutput> outputs_;
  std::optional<repair::analysis::PredictedTraffic> expected_traffic_;
  bool expect_xor_only_ = false;
  bool skip_algebra_ = false;
};

/// Full verification of a planner's output: algebra against the planned
/// equations plus the generator identity, topology against the placement,
/// conservation against the scheme's closed form.
[[nodiscard]] VerifyReport verify_planned_repair(
    const repair::PlannedRepair& planned,
    const repair::RepairProblem& problem, repair::Scheme scheme,
    bool skip_algebra = false);

/// Verification of a degraded-read plan (single sub-equation delivered to
/// an arbitrary destination node).
[[nodiscard]] VerifyReport verify_planned_read(
    const repair::PlannedRead& planned, const rs::RSCode& code,
    const topology::Placement& placement, std::span<const std::size_t> lost,
    std::size_t target, topology::NodeId destination);

/// One outstanding equation of a mid-repair re-plan, as the resilient
/// driver knows it: the remainder terms, the op expected to produce it,
/// and each banked partial's decomposition over real blocks, keyed by its
/// pseudo slot (a missing slot means the partial is opaque).
struct RemainderCheck {
  repair::RemainderEquation eq;
  repair::OpId output = repair::kNoOp;
  std::map<std::size_t, repair::LeafTerms> partial_decompositions;
};

/// Verification of a patched plan emitted by the re-plan loop: each
/// remainder equation folds to its terms, partials are read only at their
/// banked nodes, no forbidden block is touched, and the traffic matches
/// the summed per-equation closed form (scheme-aware: pipeline/star vs
/// direct shipping).
[[nodiscard]] VerifyReport verify_remainder_plan(
    const repair::RepairPlan& plan, const topology::Placement& placement,
    const rs::RSCode& code, std::span<const RemainderCheck> checks,
    const std::set<std::size_t>& forbidden, bool skip_algebra = false);

/// Timing verification against the closed-form makespan lower bound
/// (repair/analysis::makespan_lower_bound — pipeline-depth floor plus
/// port-load floor under `net`'s port model at `slice_size`).
///
/// Two directions:
///  * soundness — `measured_makespan_s` (a simulated or executed schedule
///    of `plan`) must not beat the floor: a measurement below it means the
///    schedule and the port model disagree (a mis-wired relay dependency
///    lets slices skip a stage, which is exactly how a broken chain shows
///    up in timing rather than in traffic counts);
///  * tightness (`expect_tight`) — the measurement must land within
///    `tolerance` (relative) of the floor. This is the *pipelining proof*
///    for chained sliced schedules: a chain whose every cross-rack port is
///    busy every slice interval meets the pipeline-depth bound; a
///    mis-ordered chain or a star in disguise serializes hops and blows
///    past it.
[[nodiscard]] VerifyReport verify_makespan(
    const repair::RepairPlan& plan, const topology::Cluster& cluster,
    const topology::NetworkParams& net, std::size_t slice_size,
    double measured_makespan_s, bool expect_tight = false,
    double tolerance = 0.35);

/// True when the RPR_VERIFY_PLANS debug mode is on (env var set to a
/// non-empty value other than "0"). Read per call so tests can toggle it.
[[nodiscard]] bool verify_plans_enabled();

/// True when online verification is on (the default): every plan and every
/// mid-repair re-plan is verified before execution/commit. RPR_VERIFY_ONLINE
/// set to "0" disables it (escape hatch for benchmarking the bare planner).
/// The online fast path always runs the topological + conservation checks
/// and gates the algebraic fold behind the plan-fingerprint cache;
/// RPR_VERIFY_PLANS forces the full uncached algebra on top.
[[nodiscard]] bool online_verify_enabled();

/// FNV-1a fingerprint of a plan's full structure (ops, coefficients,
/// nodes, inputs) plus its declared outputs — the key of the online
/// algebra cache.
[[nodiscard]] std::uint64_t plan_fingerprint(
    const repair::RepairPlan& plan, std::span<const repair::OpId> outputs);

/// Process-wide bounded cache of fingerprints whose algebraic fold already
/// passed. Returns true on a hit (algebra may be skipped); on a miss the
/// fingerprint is inserted and false returned.
[[nodiscard]] bool algebra_cache_check_and_insert(std::uint64_t fingerprint);

/// Throws std::logic_error carrying `context` and the full report when the
/// report has violations; no-op otherwise.
void throw_if_violated(const VerifyReport& report, const std::string& context);

}  // namespace rpr::verify
