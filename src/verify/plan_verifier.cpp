#include "verify/plan_verifier.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "gf/gf256.h"
#include "util/contracts.h"

namespace rpr::verify {

namespace {

using repair::LeafTerms;
using repair::OpId;
using repair::OpKind;
using repair::PlanOp;
using repair::RepairPlan;

std::string block_name(std::size_t block, std::size_t total) {
  if (block >= total) return "partial#" + std::to_string(block);
  return "b" + std::to_string(block);
}

/// Renders a sparse equation as "c*b0 ^ c*b4 ^ ..." (or "0" when empty).
std::string render_terms(const LeafTerms& terms, std::size_t total) {
  if (terms.empty()) return "0";
  std::string out;
  for (const auto& [block, coeff] : terms) {
    if (!out.empty()) out += " ^ ";
    out += std::to_string(static_cast<unsigned>(coeff)) + "*" +
           block_name(block, total);
  }
  return out;
}

/// Independent symbolic fold of the plan: the value of every op as a sparse
/// linear combination of stripe (and pseudo) slots over GF(2^8). Indexing
/// violations are reported by check_structure; the fold simply ignores
/// malformed inputs so it never reads out of bounds.
std::vector<LeafTerms> fold_plan(const RepairPlan& plan) {
  std::vector<LeafTerms> value(plan.ops.size());
  for (OpId id = 0; id < plan.ops.size(); ++id) {
    const PlanOp& op = plan.ops[id];
    switch (op.kind) {
      case OpKind::kRead:
        if (op.coeff != 0) value[id][op.block] = op.coeff;
        break;
      case OpKind::kSend:
        if (op.inputs.size() == 1 && op.inputs[0] < id) {
          value[id] = value[op.inputs[0]];
        }
        break;
      case OpKind::kCombine: {
        LeafTerms& acc = value[id];
        for (std::size_t i = 0; i < op.inputs.size(); ++i) {
          if (op.inputs[i] >= id) continue;
          const std::uint8_t c = op.input_coeffs.empty()
                                     ? std::uint8_t{1}
                                     : op.input_coeffs.size() > i
                                           ? op.input_coeffs[i]
                                           : std::uint8_t{0};
          if (c == 0) continue;
          for (const auto& [leaf, lc] : value[op.inputs[i]]) {
            acc[leaf] ^= gf::mul(c, lc);
          }
        }
        std::erase_if(acc, [](const auto& kv) { return kv.second == 0; });
        break;
      }
    }
  }
  return value;
}

}  // namespace

const char* to_string(InvariantClass c) {
  switch (c) {
    case InvariantClass::kAlgebraic: return "algebraic";
    case InvariantClass::kTopological: return "topological";
    case InvariantClass::kConservation: return "conservation";
    case InvariantClass::kTiming: return "timing";
  }
  return "?";
}

std::size_t VerifyReport::count(InvariantClass c) const {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(),
                    [c](const Violation& v) { return v.invariant == c; }));
}

std::string VerifyReport::to_string() const {
  if (ok()) return "plan verified: no violations\n";
  std::ostringstream out;
  out << violations.size() << " violation(s):\n";
  for (const Violation& v : violations) {
    out << "  [" << verify::to_string(v.invariant) << "]";
    if (v.op != repair::kNoOp) out << " op " << v.op;
    if (v.rack != kNoRack) out << " (rack " << v.rack << ")";
    out << ": " << v.message << "\n";
  }
  return out.str();
}

PlanVerifier::PlanVerifier(const RepairPlan& plan,
                           const topology::Cluster& cluster)
    : plan_(&plan), cluster_(&cluster) {}

PlanVerifier& PlanVerifier::with_placement(
    const topology::Placement& placement) {
  placement_ = &placement;
  return *this;
}

PlanVerifier& PlanVerifier::with_code(const rs::RSCode& code) {
  code_ = &code;
  return *this;
}

PlanVerifier& PlanVerifier::forbid_blocks(const std::set<std::size_t>& blocks) {
  forbidden_.insert(blocks.begin(), blocks.end());
  return *this;
}

PlanVerifier& PlanVerifier::add_pseudo_slot(std::size_t slot,
                                            topology::NodeId node,
                                            LeafTerms decomposition) {
  pseudo_[slot] = PseudoSlot{node, std::move(decomposition)};
  return *this;
}

PlanVerifier& PlanVerifier::expect_output(OpId op, std::size_t failed_block,
                                          topology::NodeId destination,
                                          LeafTerms terms) {
  outputs_.push_back(
      ExpectedOutput{op, failed_block, destination, std::move(terms)});
  return *this;
}

PlanVerifier& PlanVerifier::expect_traffic(
    repair::analysis::PredictedTraffic expected) {
  expected_traffic_ = expected;
  return *this;
}

PlanVerifier& PlanVerifier::expect_xor_only() {
  expect_xor_only_ = true;
  return *this;
}

PlanVerifier& PlanVerifier::skip_algebra(bool skip) {
  skip_algebra_ = skip;
  return *this;
}

std::size_t PlanVerifier::total_blocks() const {
  if (placement_ != nullptr) return placement_->code().total();
  if (code_ != nullptr) return code_->config().total();
  return 0;
}

topology::RackId PlanVerifier::rack_of_op(OpId id) const {
  const topology::NodeId node = plan_->ops[id].node;
  if (node >= cluster_->total_nodes()) return kNoRack;
  return cluster_->rack_of(node);
}

void PlanVerifier::check_structure(VerifyReport& report) const {
  const auto add = [&](OpId op, std::string msg) {
    report.violations.push_back(Violation{InvariantClass::kTopological, op,
                                          rack_of_op(op), std::move(msg)});
  };
  for (OpId id = 0; id < plan_->ops.size(); ++id) {
    const PlanOp& op = plan_->ops[id];
    if (op.node >= cluster_->total_nodes()) {
      report.violations.push_back(
          Violation{InvariantClass::kTopological, id, kNoRack,
                    "node " + std::to_string(op.node) +
                        " is outside the cluster (" +
                        std::to_string(cluster_->total_nodes()) + " nodes)"});
      continue;
    }
    for (const OpId in : op.inputs) {
      if (in >= id) {
        add(id, "uses value " + std::to_string(in) +
                    " before it is produced (cycle or forward reference)");
      }
    }
    switch (op.kind) {
      case OpKind::kRead:
        if (!op.inputs.empty()) add(id, "read takes no inputs");
        break;
      case OpKind::kSend:
        if (op.inputs.size() != 1) {
          add(id, "send takes exactly one input");
          break;
        }
        if (op.from >= cluster_->total_nodes()) {
          add(id, "send source node " + std::to_string(op.from) +
                      " is outside the cluster");
          break;
        }
        if (op.inputs[0] < id &&
            plan_->ops[op.inputs[0]].node != op.from) {
          add(id, "send departs from node " + std::to_string(op.from) +
                      " but its value lives on node " +
                      std::to_string(plan_->ops[op.inputs[0]].node) +
                      " — no such transfer edge exists");
        }
        break;
      case OpKind::kCombine:
        if (op.inputs.empty()) {
          add(id, "combine needs at least one input");
          break;
        }
        if (!op.input_coeffs.empty() &&
            op.input_coeffs.size() != op.inputs.size()) {
          add(id, "combine has " + std::to_string(op.inputs.size()) +
                      " inputs but " + std::to_string(op.input_coeffs.size()) +
                      " coefficients");
        }
        for (const OpId in : op.inputs) {
          if (in < id && plan_->ops[in].node != op.node) {
            add(id, "combines value " + std::to_string(in) + " living on node " +
                        std::to_string(plan_->ops[in].node) +
                        " without moving it to node " +
                        std::to_string(op.node));
          }
        }
        break;
    }
  }
  for (const ExpectedOutput& out : outputs_) {
    if (out.op >= plan_->ops.size()) {
      report.violations.push_back(
          Violation{InvariantClass::kTopological, out.op, kNoRack,
                    "declared output op does not exist in the plan"});
      continue;
    }
    if (plan_->ops[out.op].node != out.destination) {
      add(out.op,
          "output for " + block_name(out.failed_block, total_blocks()) +
              " materializes on node " +
              std::to_string(plan_->ops[out.op].node) +
              " instead of its replacement node " +
              std::to_string(out.destination));
    }
  }
}

void PlanVerifier::check_reads(VerifyReport& report) const {
  const std::size_t total = total_blocks();
  for (OpId id = 0; id < plan_->ops.size(); ++id) {
    const PlanOp& op = plan_->ops[id];
    if (op.kind != OpKind::kRead) continue;
    if (op.node >= cluster_->total_nodes()) continue;  // already reported
    if (forbidden_.count(op.block) != 0) {
      report.violations.push_back(Violation{
          InvariantClass::kTopological, id, rack_of_op(id),
          "reads " + block_name(op.block, total) +
              ", which is failed/unusable and must not be a source"});
      continue;
    }
    if (op.block >= total && total != 0) {
      const auto it = pseudo_.find(op.block);
      if (it == pseudo_.end()) {
        report.violations.push_back(
            Violation{InvariantClass::kTopological, id, rack_of_op(id),
                      "reads undeclared pseudo slot " +
                          std::to_string(op.block)});
      } else if (it->second.node != op.node) {
        report.violations.push_back(Violation{
            InvariantClass::kTopological, id, rack_of_op(id),
            "reads banked partial " + std::to_string(op.block) + " on node " +
                std::to_string(op.node) + " but it was banked on node " +
                std::to_string(it->second.node)});
      }
      continue;
    }
    if (placement_ != nullptr && op.block < total &&
        placement_->node_of(op.block) != op.node) {
      report.violations.push_back(Violation{
          InvariantClass::kTopological, id, rack_of_op(id),
          "reads " + block_name(op.block, total) + " on node " +
              std::to_string(op.node) + " but the block is stored on node " +
              std::to_string(placement_->node_of(op.block))});
    }
  }
}

void PlanVerifier::check_orphans(VerifyReport& report) const {
  if (outputs_.empty()) return;  // cannot tell outputs from orphans
  std::vector<bool> consumed(plan_->ops.size(), false);
  for (const PlanOp& op : plan_->ops) {
    for (const OpId in : op.inputs) {
      if (in < plan_->ops.size()) consumed[in] = true;
    }
  }
  for (const ExpectedOutput& out : outputs_) {
    if (out.op < plan_->ops.size()) consumed[out.op] = true;
  }
  for (OpId id = 0; id < plan_->ops.size(); ++id) {
    if (!consumed[id]) {
      report.violations.push_back(
          Violation{InvariantClass::kTopological, id, rack_of_op(id),
                    "orphaned intermediate: produced but never consumed and "
                    "not a declared output"});
    }
  }
}

void PlanVerifier::check_algebra(VerifyReport& report) const {
  const std::size_t total = total_blocks();
  const std::vector<LeafTerms> value = fold_plan(*plan_);

  if (expect_xor_only_) {
    for (OpId id = 0; id < plan_->ops.size(); ++id) {
      if (plan_->ops[id].kind == OpKind::kCombine &&
          plan_->ops[id].with_matrix_cost) {
        report.violations.push_back(Violation{
            InvariantClass::kAlgebraic, id, rack_of_op(id),
            "plan claims the XOR fast path but this combine is charged at "
            "matrix-decode cost"});
      }
    }
  }

  for (const ExpectedOutput& out : outputs_) {
    if (out.op >= plan_->ops.size()) continue;  // reported by structure pass
    const LeafTerms& actual = value[out.op];

    if (expect_xor_only_) {
      for (const auto& [block, coeff] : out.terms) {
        if (coeff != 1) {
          report.violations.push_back(Violation{
              InvariantClass::kAlgebraic, out.op, rack_of_op(out.op),
              "plan claims the XOR fast path but " +
                  block_name(block, total) + " carries coefficient " +
                  std::to_string(static_cast<unsigned>(coeff))});
        }
      }
    }

    if (actual != out.terms) {
      std::ostringstream msg;
      msg << "equation mismatch for " << block_name(out.failed_block, total)
          << ":\n"
          << "      expected: " << render_terms(out.terms, total) << "\n"
          << "      actual  : " << render_terms(actual, total) << "\n"
          << "      diff    :";
      std::set<std::size_t> leaves;
      for (const auto& [b, c] : out.terms) leaves.insert(b);
      for (const auto& [b, c] : actual) leaves.insert(b);
      for (const std::size_t b : leaves) {
        const auto ei = out.terms.find(b);
        const auto ai = actual.find(b);
        const unsigned ec = ei == out.terms.end() ? 0u : ei->second;
        const unsigned ac = ai == actual.end() ? 0u : ai->second;
        if (ec != ac) {
          msg << " " << block_name(b, total) << ": expected " << ec
              << ", actual " << ac << ";";
        }
      }
      report.violations.push_back(Violation{InvariantClass::kAlgebraic,
                                            out.op, rack_of_op(out.op),
                                            msg.str()});
      continue;  // the identity proof below would only repeat the mismatch
    }

    // Generator identity: expand pseudo slots into their banked
    // decomposition, then prove sum_i c_i * G[b_i] == G[failed] — the
    // combination reconstructs the block for every stripe content.
    if (code_ == nullptr) continue;
    LeafTerms expanded;
    bool opaque = false;
    for (const auto& [block, coeff] : actual) {
      if (block < total) {
        expanded[block] ^= coeff;
        continue;
      }
      const auto it = pseudo_.find(block);
      if (it == pseudo_.end() || it->second.decomposition.empty()) {
        opaque = true;  // unknown partial: identity cannot be evaluated
        break;
      }
      for (const auto& [b, c] : it->second.decomposition) {
        expanded[b] ^= gf::mul(coeff, c);
      }
    }
    if (opaque) continue;
    std::erase_if(expanded, [](const auto& kv) { return kv.second == 0; });

    const matrix::Matrix& g = code_->generator();
    bool leaves_ok = out.failed_block < g.rows();
    for (const auto& [block, coeff] : expanded) {
      (void)coeff;
      if (block >= g.rows()) leaves_ok = false;
    }
    if (!leaves_ok) {
      report.violations.push_back(
          Violation{InvariantClass::kAlgebraic, out.op, rack_of_op(out.op),
                    "equation references a block outside the stripe"});
      continue;
    }
    for (std::size_t j = 0; j < g.cols(); ++j) {
      std::uint8_t sum = 0;
      for (const auto& [block, coeff] : expanded) {
        sum ^= gf::mul(coeff, g.at(block, j));
      }
      if (sum != g.at(out.failed_block, j)) {
        report.violations.push_back(Violation{
            InvariantClass::kAlgebraic, out.op, rack_of_op(out.op),
            "generator identity fails for " +
                block_name(out.failed_block, total) + " at data column " +
                std::to_string(j) + ": the expression " +
                render_terms(expanded, total) +
                " does not reconstruct the block"});
        break;
      }
    }
  }
}

void PlanVerifier::check_conservation(VerifyReport& report) const {
  if (!expected_traffic_.has_value()) return;
  repair::analysis::PredictedTraffic actual;
  for (OpId id = 0; id < plan_->ops.size(); ++id) {
    const PlanOp& op = plan_->ops[id];
    if (op.kind != OpKind::kSend || op.from == op.node) continue;
    if (op.from >= cluster_->total_nodes() ||
        op.node >= cluster_->total_nodes()) {
      continue;  // reported by the structure pass
    }
    if (cluster_->same_rack(op.from, op.node)) {
      ++actual.inner_transfers;
    } else {
      ++actual.cross_transfers;
    }
  }
  if (actual.cross_transfers != expected_traffic_->cross_transfers) {
    report.violations.push_back(Violation{
        InvariantClass::kConservation, repair::kNoOp, kNoRack,
        "cross-rack transfer count " +
            std::to_string(actual.cross_transfers) +
            " differs from the closed-form prediction " +
            std::to_string(expected_traffic_->cross_transfers) + " (" +
            std::to_string(actual.cross_transfers * plan_->block_size) +
            " vs " +
            std::to_string(expected_traffic_->cross_transfers *
                           plan_->block_size) +
            " bytes)"});
  }
  if (actual.inner_transfers != expected_traffic_->inner_transfers) {
    report.violations.push_back(Violation{
        InvariantClass::kConservation, repair::kNoOp, kNoRack,
        "inner-rack transfer count " +
            std::to_string(actual.inner_transfers) +
            " differs from the closed-form prediction " +
            std::to_string(expected_traffic_->inner_transfers)});
  }
}

VerifyReport PlanVerifier::run() const {
  VerifyReport report;
  check_structure(report);
  check_reads(report);
  check_orphans(report);
  if (!skip_algebra_) check_algebra(report);
  check_conservation(report);
  return report;
}

VerifyReport verify_planned_repair(const repair::PlannedRepair& planned,
                                   const repair::RepairProblem& problem,
                                   repair::Scheme scheme,
                                   bool skip_algebra) {
  RPR_REQUIRE(problem.code != nullptr && problem.placement != nullptr,
              "verify_planned_repair needs a fully specified problem");
  const topology::Placement& placement = *problem.placement;

  PlanVerifier v(planned.plan, placement.cluster());
  v.with_placement(placement).with_code(*problem.code);
  v.forbid_blocks(
      std::set<std::size_t>(problem.failed.begin(), problem.failed.end()));

  VerifyReport pre;
  if (planned.outputs.size() != problem.failed.size() ||
      planned.equations.size() != problem.failed.size()) {
    pre.violations.push_back(Violation{
        InvariantClass::kAlgebraic, repair::kNoOp, kNoRack,
        "planner emitted " + std::to_string(planned.outputs.size()) +
            " output(s) and " + std::to_string(planned.equations.size()) +
            " equation(s) for " + std::to_string(problem.failed.size()) +
            " failed block(s)"});
    return pre;
  }
  for (std::size_t e = 0; e < problem.failed.size(); ++e) {
    const rs::RepairEquation& eq = planned.equations[e];
    if (eq.failed_block != problem.failed[e]) {
      pre.violations.push_back(Violation{
          InvariantClass::kAlgebraic, repair::kNoOp, kNoRack,
          "equation " + std::to_string(e) + " rebuilds block " +
              std::to_string(eq.failed_block) + " but failure " +
              std::to_string(e) + " is block " +
              std::to_string(problem.failed[e])});
      continue;
    }
    LeafTerms terms;
    for (std::size_t i = 0; i < eq.sources.size(); ++i) {
      if (eq.coefficients[i] != 0) terms[eq.sources[i]] = eq.coefficients[i];
    }
    v.expect_output(planned.outputs[e], eq.failed_block,
                    problem.replacements[e], std::move(terms));
  }
  if (!pre.ok()) return pre;

  v.expect_traffic(
      repair::analysis::predicted_traffic(scheme, problem, planned));
  if (!planned.used_decoding_matrix) v.expect_xor_only();
  v.skip_algebra(skip_algebra);
  return v.run();
}

VerifyReport verify_planned_read(const repair::PlannedRead& planned,
                                 const rs::RSCode& code,
                                 const topology::Placement& placement,
                                 std::span<const std::size_t> lost,
                                 std::size_t target,
                                 topology::NodeId destination) {
  PlanVerifier v(planned.plan, placement.cluster());
  v.with_placement(placement).with_code(code);
  v.forbid_blocks(std::set<std::size_t>(lost.begin(), lost.end()));

  // Recover the equation the plan should evaluate from its own leaf reads:
  // the reads are trusted only for *which* survivors were selected — the
  // fold, placement check and generator identity then prove everything
  // about coefficients, locations and the final expression.
  LeafTerms terms;
  for (const PlanOp& op : planned.plan.ops) {
    if (op.kind == OpKind::kRead && op.coeff != 0) terms[op.block] = op.coeff;
  }
  v.expect_traffic(repair::analysis::predicted_equation_traffic(
      placement, terms, destination));
  v.expect_output(planned.output, target, destination, std::move(terms));
  if (!planned.used_decoding_matrix) v.expect_xor_only();
  return v.run();
}

VerifyReport verify_remainder_plan(const RepairPlan& plan,
                                   const topology::Placement& placement,
                                   const rs::RSCode& code,
                                   std::span<const RemainderCheck> checks,
                                   const std::set<std::size_t>& forbidden,
                                   bool skip_algebra) {
  PlanVerifier v(plan, placement.cluster());
  v.with_placement(placement).with_code(code);
  v.forbid_blocks(forbidden);

  repair::analysis::PredictedTraffic expected;
  for (const RemainderCheck& c : checks) {
    LeafTerms terms = c.eq.terms;
    std::map<std::size_t, topology::NodeId> pseudo_nodes;
    for (const auto& p : c.eq.partials) {
      terms[p.slot] = 1;
      pseudo_nodes[p.slot] = p.node;
      const auto dit = c.partial_decompositions.find(p.slot);
      v.add_pseudo_slot(p.slot, p.node,
                        dit == c.partial_decompositions.end()
                            ? LeafTerms{}
                            : dit->second);
    }
    const auto* pn = c.eq.partials.empty() ? nullptr : &pseudo_nodes;
    const auto one =
        c.eq.scheme == repair::RemainderScheme::kDirect
            ? repair::analysis::predicted_direct_equation_traffic(
                  placement, terms, c.eq.destination, pn)
            : repair::analysis::predicted_equation_traffic(
                  placement, terms, c.eq.destination, pn);
    expected.cross_transfers += one.cross_transfers;
    expected.inner_transfers += one.inner_transfers;
    v.expect_output(c.output, c.eq.failed_block, c.eq.destination,
                    std::move(terms));
  }
  v.expect_traffic(expected);
  v.skip_algebra(skip_algebra);
  return v.run();
}

VerifyReport verify_makespan(const repair::RepairPlan& plan,
                             const topology::Cluster& cluster,
                             const topology::NetworkParams& net,
                             std::size_t slice_size,
                             double measured_makespan_s, bool expect_tight,
                             double tolerance) {
  VerifyReport report;
  const repair::analysis::MakespanBound bound =
      repair::analysis::makespan_lower_bound(plan, cluster, net, slice_size);
  const double floor = bound.seconds();
  // Numeric slack only: the floor is schedule-independent, so beating it is
  // a model inconsistency, not an achievement.
  if (measured_makespan_s < floor * (1.0 - 1e-6)) {
    report.violations.push_back(Violation{
        InvariantClass::kTiming, repair::kNoOp, kNoRack,
        "measured makespan " + std::to_string(measured_makespan_s) +
            " s beats the schedule-independent lower bound " +
            std::to_string(floor) +
            " s (pipeline-depth " + std::to_string(bound.pipeline_depth_s) +
            " s over " + std::to_string(bound.stages) +
            " stage(s), port-load " + std::to_string(bound.port_load_s) +
            " s) — the schedule and the port model disagree"});
  }
  if (expect_tight && measured_makespan_s > floor * (1.0 + tolerance)) {
    report.violations.push_back(Violation{
        InvariantClass::kTiming, repair::kNoOp, kNoRack,
        "measured makespan " + std::to_string(measured_makespan_s) +
            " s misses the pipeline-depth lower bound " +
            std::to_string(floor) + " s by more than " +
            std::to_string(tolerance * 100.0) +
            "% — the schedule is not actually pipelined (serialized hops "
            "or a starved relay)"});
  }
  return report;
}

bool verify_plans_enabled() {
  const char* env = std::getenv("RPR_VERIFY_PLANS");
  return env != nullptr && *env != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

bool online_verify_enabled() {
  const char* env = std::getenv("RPR_VERIFY_ONLINE");
  return env == nullptr || !(env[0] == '0' && env[1] == '\0');
}

std::uint64_t plan_fingerprint(const RepairPlan& plan,
                               std::span<const OpId> outputs) {
  std::uint64_t fp = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&fp](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      fp ^= static_cast<std::uint8_t>(v >> (8 * i));
      fp *= 0x100000001b3ULL;  // FNV-1a prime
    }
  };
  mix(plan.ops.size());
  for (const PlanOp& op : plan.ops) {
    mix(static_cast<std::uint64_t>(op.kind));
    mix(op.node);
    mix(op.from);
    mix(op.block);
    mix(op.coeff);
    mix(op.with_matrix_cost ? 1 : 0);
    mix(op.inputs.size());
    for (const OpId in : op.inputs) mix(in);
    for (const std::uint8_t c : op.input_coeffs) mix(c);
  }
  mix(outputs.size());
  for (const OpId out : outputs) mix(out);
  return fp;
}

bool algebra_cache_check_and_insert(std::uint64_t fingerprint) {
  // A hit means a structurally identical plan's algebra already ran this
  // process (a failed fold throws and aborts the repair, so cached entries
  // only ever correspond to plans whose fold was at least attempted —
  // re-running it on the identical structure proves nothing new). Bounded:
  // the rare overflow just re-pays one algebra pass per cached plan.
  static std::mutex mu;
  static std::unordered_set<std::uint64_t> cache;
  const std::lock_guard<std::mutex> lock(mu);
  if (cache.count(fingerprint) != 0) return true;
  if (cache.size() >= 8192) cache.clear();
  cache.insert(fingerprint);
  return false;
}

void throw_if_violated(const VerifyReport& report, const std::string& context) {
  if (report.ok()) return;
  throw std::logic_error("plan verification failed (" + context + "): " +
                         report.to_string());
}

}  // namespace rpr::verify
