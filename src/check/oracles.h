// Protocol oracles checked during explored runs (and by the sim-engine
// fault sweep): each check::Event the instrumented runtime emits is a
// state-machine transition that must respect the invariants the repair
// pipeline's correctness argument rests on. Violations fire through a
// callback so the caller (normally CoopScheduler::fail_run) can attach
// the replayable schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "check/scheduler.h"

namespace rpr::check {

/// Streaming invariant checks over protocol events:
///  * slice counters are monotonic per (state, op);
///  * exactly one first-wins winner: at most one commit transition per
///    (state, op), and no commit/fail lands on an already-resolved op
///    (no double commit);
///  * no banked partial is lost across a re-plan (every usable finished
///    value of an aborted attempt is folded into the next equation).
/// One instance covers one explored run; state is keyed by (src, op) so a
/// re-planning driver's fresh ExecState per attempt never aliases ops.
class OracleSet {
 public:
  using FailFn = std::function<void(const std::string&)>;

  void on_event(const Event& e, const FailFn& fail);

  /// Commits observed for one (state, op) so far (tests).
  [[nodiscard]] int commits(std::uint64_t src, std::uint64_t op) const;

 private:
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> counter_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, int> commits_;
};

}  // namespace rpr::check
