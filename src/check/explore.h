// Systematic schedule exploration (stateless model checking, CHESS-style).
//
// The explorer re-executes a deterministic scenario many times. Each run
// is driven by a CoopScheduler given a forced decision prefix; the run's
// recorded trace extends the DFS tree, and backtracking picks the deepest
// decision with an untried alternative that (a) stays within the
// preemption bound and (b) is not pruned by the sleep set. Fault
// injection is part of the choice space: at every recorded decision the
// scheduler may first kill one of the candidate nodes (engines observe it
// through check::node_killed inside is_dead), so faults land at every
// explored state boundary.
//
// Scenario contract: construct all state fresh inside the callback (the
// same prefix must reproduce the same trace — no wall-clock decisions, no
// cross-run state), spawn checked threads with deterministic ordinals via
// check::run_checked after check::expect_threads, and join them before
// returning. A violation recorded mid-run aborts the checked threads with
// AbortRun; wrap any post-join code that assumes a consistent final state
// in ScenarioCtx::shield.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "check/scheduler.h"

namespace rpr::check {

struct ExploreOptions {
  int preemption_bound = 2;
  int fault_budget = 0;
  std::vector<std::uint32_t> fault_candidates;
  std::size_t max_schedules = 500000;
  double time_budget_s = 0.0;  ///< 0 = unlimited
  unsigned branch_mask = kDefaultBranchMask;
  bool sleep_sets = true;
};

struct Violation {
  std::string message;
  std::string schedule;  ///< replay with RPR_CHECK_REPLAY / check::replay
};

struct ExploreResult {
  std::size_t schedules = 0;
  std::size_t max_decisions = 0;  ///< deepest recorded-decision count seen
  bool complete = false;          ///< bounded space exhausted (no budget cut)
  std::optional<Violation> violation;
};

class ScenarioCtx {
 public:
  explicit ScenarioCtx(CoopScheduler& sched) : sched_(sched) {}

  /// Records a scenario-level violation (e.g. rebuilt bytes differ from
  /// the reference) against the current schedule.
  void fail(const std::string& msg) { sched_.fail_run(msg); }

  [[nodiscard]] bool aborted() const { return sched_.violated(); }

  /// Runs fn, swallowing exceptions iff the run is already aborted (an
  /// aborted engine may leave state that makes result assembly throw).
  template <typename Fn>
  void shield(Fn&& fn) {
    try {
      fn();
    } catch (...) {
      if (!aborted()) throw;
    }
  }

  [[nodiscard]] CoopScheduler& scheduler() { return sched_; }

 private:
  CoopScheduler& sched_;
};

using Scenario = std::function<void(ScenarioCtx&)>;

/// Explores the scenario's bounded schedule space; returns on the first
/// violation or on exhaustion.
ExploreResult explore(const Scenario& scenario, const ExploreOptions& opts);

/// Runs exactly one schedule (strict: divergence from the forced prefix
/// is itself a violation). Returns the violation, if any.
std::optional<Violation> replay(const Scenario& scenario,
                                const std::string& schedule,
                                const ExploreOptions& opts);

}  // namespace rpr::check
