// Lock-order (lockdep-style) analysis.
//
// Every check::Mutex acquisition, while the graph is enabled, records one
// directed edge per lock already held by the acquiring thread:
// held-class -> new-class, witnessed by the two acquisition stacks. Locks
// are grouped into *classes* by their site label ("testbed.rack_rx",
// "exec.state", ...) — the order discipline is per site family, not per
// instance. A cycle in the class graph is a potential deadlock: two
// threads can interleave the member acquisitions and wait on each other
// forever, whether or not any observed run actually deadlocked.
//
// Enable with RPR_LOCK_GRAPH=1 (dumped at process exit to
// RPR_LOCK_GRAPH_OUT — a directory path ending in '/' gets one
// lock_graph.<pid>.txt per process, ready for `rpr_check
// --merge-lock-graphs`), or programmatically via lock_graph_set_enabled().
// The explorer's scheduled runs can enable it independently of the env.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rpr::check {

/// One acquisition-order edge between two lock classes, with the first
/// witnessed pair of stacks.
struct LockEdge {
  std::string from;
  std::string to;
  std::uint64_t count = 0;
  std::string from_stack;  ///< where `from` was acquired (held lock)
  std::string to_stack;    ///< where `to` was acquired under it
};

/// A strongly-connected component of lock classes with >= 2 members (or a
/// self-edge): a potential deadlock. `edges` lists the member edges — for
/// a two-class inversion these are exactly the two acquisitions whose
/// stacks show both nesting orders.
struct LockCycle {
  std::vector<std::string> classes;
  std::vector<LockEdge> edges;
};

class LockGraph {
 public:
  static LockGraph& instance();

  void on_acquire(const void* m, const char* cls);
  void on_release(const void* m);

  /// Forgets all edges (tests) — not the per-thread held stacks.
  void clear();

  [[nodiscard]] std::vector<LockEdge> edges() const;
  [[nodiscard]] std::vector<LockCycle> cycles() const;

  /// Human-readable report: every edge, then each cycle with the witness
  /// stacks forming the inversion.
  [[nodiscard]] std::string report() const;

  /// Tab-separated dump (one `edge` line per edge, stacks inline with
  /// frames '|'-joined); merge() parses the same format and accumulates.
  void dump(std::ostream& os) const;
  void merge(std::istream& is);

  /// Graphviz rendering (cycle edges red).
  [[nodiscard]] std::string dot() const;

 private:
  LockGraph() = default;
  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>, LockEdge> edges_;
};

void lock_graph_set_enabled(bool on);

}  // namespace rpr::check
