// Deterministic concurrency checking: instrumentation hooks + cooperative
// scheduler for the slice-streaming repair runtime.
//
// The runtime's synchronization points (slice publish, first-wins resolve,
// port acquire/release, retry decision, bank/re-plan trigger) call the
// inline hooks below. With no scheduler installed (production) every hook
// is one relaxed atomic load and a branch — no locks, no allocation. A
// test installs a `Scheduler` (normally `CoopScheduler` driven by
// `check::explore`) and the instrumented threads become *cooperative*:
// exactly one checked thread runs at a time, and every context switch is a
// recorded decision the explorer can enumerate, bound, and replay.
//
// Ground rules for instrumented code:
//  * `point()` must be called with no `check::Mutex` held (it may throw
//    `AbortRun` to unwind the run once a violation is recorded).
//  * A `check::Mutex` contended between a *checked* and an *unchecked*
//    thread can stall a scheduled run, because only checked threads
//    participate in the wake protocol. Instrumented code must keep all
//    contenders on checked threads while a scheduler is installed — this
//    is why `util::ThreadPool::parallel_for` runs inline under checking.
//  * Checked thread ordinals must be deterministic across runs (use the
//    plan op id / worker node id, never a spawn-order counter).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rpr::check {

// ---------------------------------------------------------------------------
// Instrumentation points

/// Kind of an instrumented synchronization point. Values are bit positions
/// so explore options can mask which kinds branch.
enum class PointKind : std::uint8_t {
  kLockAcquire = 0,  ///< about to acquire a check::Mutex
  kCondWait = 1,     ///< blocked until an object is notified
  kPublish = 2,      ///< about to publish slice progress
  kResolve = 3,      ///< about to resolve an op (first-wins commit/fail)
  kRetry = 4,        ///< top of a retry attempt
  kBank = 5,         ///< banking decision in the resilient driver
  kReplan = 6,       ///< re-plan trigger in the resilient driver
  kStep = 7,         ///< generic instrumented step / fault boundary
};

constexpr unsigned kind_bit(PointKind k) {
  return 1u << static_cast<unsigned>(k);
}

/// Default set of branch-eligible kinds: protocol-level boundaries. Lock
/// acquisitions still serialize and block under the scheduler but do not
/// branch by default (the state space stays protocol-sized; forced
/// switches at blocking points cover lock-order interleavings).
constexpr unsigned kDefaultBranchMask =
    kind_bit(PointKind::kPublish) | kind_bit(PointKind::kResolve) |
    kind_bit(PointKind::kRetry) | kind_bit(PointKind::kBank) |
    kind_bit(PointKind::kReplan) | kind_bit(PointKind::kStep);

/// One instrumented point. `obj` identifies the synchronized object (mutex
/// address, condition address, op id...); `scope` optionally groups
/// related objects (e.g. all ops of one ExecState) so sleep-set pruning
/// never treats same-scope accesses as independent. `label` is a static
/// string naming the site.
struct Point {
  PointKind kind = PointKind::kStep;
  std::uintptr_t obj = 0;
  std::uintptr_t scope = 0;
  const char* label = "";
};

// ---------------------------------------------------------------------------
// Oracle-visible protocol events

enum class EventKind : std::uint8_t {
  kSliceCounter,  ///< slices_done transition a -> b on (src, op)
  kCommit,        ///< op resolved done (first-wins winner)
  kFail,          ///< op resolved failed
  kBankFold,      ///< re-plan banking: a = usable values, b = folded
};

struct Event {
  EventKind kind = EventKind::kSliceCounter;
  std::uint64_t src = 0;  ///< emitting state instance (disambiguates re-plans)
  std::uint64_t op = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool duplicate = false;  ///< a resolution landed on an already-resolved op
};

// ---------------------------------------------------------------------------
// Mutations (self-test hooks: deliberately break an invariant so the
// checker's detection of it can itself be tested)

enum class Mutation : std::uint32_t {
  kDropBank = 1u << 0,            ///< resilient: discard reusable partials
  kNonMonotonicPublish = 1u << 1, ///< exec_state: bypass the monotonic guard
  kDoubleCommit = 1u << 2,        ///< exec_state: bypass first-wins resolve
};

// ---------------------------------------------------------------------------
// Scheduler interface

/// Thrown through checked threads to end a run early (violation recorded
/// or deadlock detected). `run_checked` absorbs it.
struct AbortRun {};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Declares that `n` checked threads will register before scheduling
  /// starts (a registration barrier: nobody runs until everyone parked).
  /// May be called again after all previous threads deregistered (waves).
  virtual void expect_threads(std::size_t n) = 0;
  virtual void register_thread(int ordinal, const char* name) = 0;
  virtual void deregister_thread() = 0;

  /// Called by a checked thread at an instrumented point, before acting.
  /// May deschedule the caller; returns when rescheduled.
  virtual void yield(const Point& p) = 0;
  /// Called when the caller cannot proceed until `p.obj` is notified
  /// (mutex unlock / condition publish). Blocks until then.
  virtual void block_on(const Point& p) = 0;
  /// Re-enables threads blocked on `obj` (they run when next chosen).
  virtual void notify_obj(std::uintptr_t obj) = 0;

  /// Protocol event sink (thread-safe; may be called from unchecked
  /// threads, e.g. the resilient driver folding banked values).
  virtual void observe(const Event& e) = 0;

  /// True once the explorer injected a kill of `node` this run.
  virtual bool node_killed(std::uint32_t node) const = 0;

  /// Records a violation and aborts the run (idempotent; first wins).
  virtual void fail_run(const std::string& msg) = 0;
};

namespace detail {
extern std::atomic<Scheduler*> g_scheduler;
extern std::atomic<std::uint32_t> g_mutations;
extern std::atomic<std::uintptr_t> g_scope_gen;
extern thread_local bool t_checked;
}  // namespace detail

/// Fresh identity for an event/scope source (e.g. one ExecState instance).
/// Heap addresses are NOT usable as identity across a run: a re-planning
/// driver frees one attempt's state and allocates the next, and the
/// allocator may hand back the same address — aliasing two attempts in the
/// oracles (observed as a bogus "two first-wins winners" on re-plan
/// scenarios). The explorer resets the counter at every run boundary so
/// ids are deterministic per schedule.
inline std::uintptr_t next_scope_id() {
  return detail::g_scope_gen.fetch_add(1, std::memory_order_relaxed) + 1;
}
inline void reset_scope_ids() {
  detail::g_scope_gen.store(0, std::memory_order_relaxed);
}

/// Installs (or clears, with nullptr) the process-wide scheduler. Only one
/// exploration may run at a time in a process.
void install(Scheduler* s);

/// The installed scheduler, if any (null in production).
inline Scheduler* installed() {
  return detail::g_scheduler.load(std::memory_order_acquire);
}

/// The installed scheduler, but only for threads that registered with it.
/// Unchecked threads (main, TCP acceptors, pool workers) see null and take
/// the plain uninstrumented path.
inline Scheduler* scheduled() {
  return detail::t_checked
             ? detail::g_scheduler.load(std::memory_order_relaxed)
             : nullptr;
}

/// True on a thread currently registered with the installed scheduler.
inline bool this_thread_checked() { return scheduled() != nullptr; }

/// Instrumented-point hook: no-op unless the calling thread is checked.
inline void point(PointKind k, std::uintptr_t obj, std::uintptr_t scope,
                  const char* label) {
  if (Scheduler* s = scheduled()) s->yield(Point{k, obj, scope, label});
}

/// Notifies scheduler-blocked waiters of `obj` (call after cv.notify_all).
inline void notify_object(std::uintptr_t obj) {
  if (Scheduler* s = scheduled()) s->notify_obj(obj);
}

/// Protocol-event hook. Uses installed() (not scheduled()) so events from
/// unchecked threads — the resilient driver runs on the scenario thread —
/// still reach the oracles; Scheduler::observe must be thread-safe.
void observe(const Event& e);

/// Test-only global event observer, independent of any scheduler (used by
/// the sim-engine fault sweep and plain unit tests).
using EventObserver = std::function<void(const Event&)>;
void set_event_observer(EventObserver fn);

/// True once the explorer injected a kill of `node`. Callable from any
/// thread (engines poll it inside is_dead).
inline bool node_killed(std::uint32_t node) {
  Scheduler* s = installed();
  return s != nullptr && s->node_killed(node);
}

/// Declares the next wave of checked threads (no-op without a scheduler).
inline void expect_threads(std::size_t n) {
  if (Scheduler* s = installed()) s->expect_threads(n);
}

// ---------------------------------------------------------------------------
// Mutation hooks

inline bool mutated(Mutation m) {
  return (detail::g_mutations.load(std::memory_order_relaxed) &
          static_cast<std::uint32_t>(m)) != 0u;
}

void set_mutations(std::uint32_t mask);

/// RAII scope enabling one mutation (tests only).
class MutationGuard {
 public:
  explicit MutationGuard(Mutation m) {
    set_mutations(static_cast<std::uint32_t>(m));
  }
  ~MutationGuard() { set_mutations(0); }
  MutationGuard(const MutationGuard&) = delete;
  MutationGuard& operator=(const MutationGuard&) = delete;
};

// ---------------------------------------------------------------------------
// Checked thread entry

namespace detail {
void run_checked_impl(int ordinal, const char* name,
                      const std::function<void()>& fn);
}  // namespace detail

/// Runs `fn` as a checked thread of the installed scheduler (plain call
/// when none is installed). Registers under `ordinal`, absorbs AbortRun,
/// and converts any other exception into a recorded violation.
template <typename Fn>
void run_checked(int ordinal, const char* name, Fn&& fn) {
  if (installed() == nullptr) {
    fn();
    return;
  }
  detail::run_checked_impl(ordinal, name, std::function<void()>(fn));
}

// ---------------------------------------------------------------------------
// Instrumented mutex

void lock_graph_note_acquire(const void* m, const char* cls);
void lock_graph_note_release(const void* m);
bool lock_graph_enabled();

/// Drop-in std::mutex replacement: participates in cooperative scheduling
/// when the owning thread is checked, and records acquisition-order edges
/// into the global lock graph when that is enabled. Satisfies Lockable, so
/// std::unique_lock / std::scoped_lock / condition_variable_any work. The
/// class label names the *site family* (all port RX mutexes share one
/// class) — lock-order analysis is per class, not per instance.
class Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* cls) : cls_(cls) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void set_class(const char* cls) { cls_ = cls; }
  [[nodiscard]] const char* lock_class() const { return cls_; }

  void lock() {
    if (Scheduler* s = scheduled()) {
      s->yield(Point{PointKind::kLockAcquire, id(), 0, cls_});
      while (!m_.try_lock()) {
        s->block_on(Point{PointKind::kLockAcquire, id(), 0, cls_});
      }
    } else {
      m_.lock();
    }
    if (lock_graph_enabled()) lock_graph_note_acquire(this, cls_);
  }

  bool try_lock() {
    if (!m_.try_lock()) return false;
    if (lock_graph_enabled()) lock_graph_note_acquire(this, cls_);
    return true;
  }

  void unlock() {
    if (lock_graph_enabled()) lock_graph_note_release(this);
    m_.unlock();
    if (Scheduler* s = scheduled()) s->notify_obj(id());
  }

 private:
  [[nodiscard]] std::uintptr_t id() const {
    return reinterpret_cast<std::uintptr_t>(this);
  }
  std::mutex m_;
  const char* cls_ = "mutex";
};

/// Multi-mutex RAII lock acquiring in *declaration order* (and releasing
/// in reverse). Replaces multi-argument std::scoped_lock on instrumented
/// paths: std::lock's deadlock-avoidance acquires in an unspecified order,
/// which both defeats lock-order analysis and hides the documented global
/// order the code relies on. Deadlock freedom must come from that global
/// order (the lock-graph analyzer checks it stays acyclic).
class OrderedLock {
 public:
  template <typename... M>
  explicit OrderedLock(M&... ms) : n_(sizeof...(M)) {
    static_assert(sizeof...(M) <= kMax, "OrderedLock: too many mutexes");
    std::size_t i = 0;
    ((locks_[i++] = &ms), ...);
    for (std::size_t j = 0; j < n_; ++j) locks_[j]->lock();
  }
  ~OrderedLock() {
    for (std::size_t j = n_; j > 0; --j) locks_[j - 1]->unlock();
  }
  OrderedLock(const OrderedLock&) = delete;
  OrderedLock& operator=(const OrderedLock&) = delete;

 private:
  static constexpr std::size_t kMax = 4;
  std::array<Mutex*, kMax> locks_{};
  std::size_t n_;
};

// ---------------------------------------------------------------------------
// Cooperative scheduler (the concrete Scheduler the explorer drives)

/// One alternative at a decision point: run `thread`, optionally first
/// injecting a kill of node `kill` (-1 = no fault).
struct Choice {
  int thread = -1;
  std::int32_t kill = -1;
  friend bool operator==(const Choice&, const Choice&) = default;
};

/// A recorded multi-option decision (single-option steps are not recorded
/// and do not consume replay-prefix entries).
struct DecisionRec {
  std::vector<Choice> options;          ///< deterministic order
  std::vector<std::uintptr_t> opt_obj;  ///< pending-point obj per option
  std::vector<std::uintptr_t> opt_scope;
  std::vector<const char*> opt_label;
  std::size_t taken = 0;
  bool preemptive = false;  ///< switching away from `current` costs 1
  int current = -1;         ///< thread running before this decision
};

struct SchedOptions {
  unsigned branch_mask = kDefaultBranchMask;
  int fault_budget = 0;
  std::vector<std::uint32_t> fault_candidates;
  bool strict_replay = false;  ///< prefix divergence = violation
};

class CoopScheduler final : public Scheduler {
 public:
  CoopScheduler(SchedOptions opts, std::vector<Choice> prefix);
  ~CoopScheduler() override;

  void set_event_sink(std::function<void(const Event&)> sink);

  void expect_threads(std::size_t n) override;
  void register_thread(int ordinal, const char* name) override;
  void deregister_thread() override;
  void yield(const Point& p) override;
  void block_on(const Point& p) override;
  void notify_obj(std::uintptr_t obj) override;
  void observe(const Event& e) override;
  [[nodiscard]] bool node_killed(std::uint32_t node) const override;
  void fail_run(const std::string& msg) override;

  [[nodiscard]] const std::vector<DecisionRec>& trace() const {
    return trace_;
  }
  [[nodiscard]] bool violated() const;
  [[nodiscard]] std::string violation_message() const;
  [[nodiscard]] bool diverged() const;

 private:
  struct Rec;
  static thread_local Rec* t_rec;
  void decide(std::unique_lock<std::mutex>& lk);
  void park(std::unique_lock<std::mutex>& lk, Rec* r);
  void fail_locked(const std::string& msg);

  SchedOptions opts_;
  std::vector<Choice> prefix_;
  mutable std::mutex mu_;
  std::map<int, std::unique_ptr<Rec>> recs_;
  std::size_t expected_ = 0;
  std::size_t registered_ = 0;
  bool started_ = false;
  int current_ = -1;
  std::size_t step_ = 0;  ///< consumed prefix entries
  std::vector<DecisionRec> trace_;
  std::atomic<bool> abort_{false};
  bool diverged_ = false;
  bool has_violation_ = false;
  std::string violation_;
  int faults_used_ = 0;
  std::atomic<std::uint64_t> killed_mask_{0};
  std::mutex sink_mu_;
  std::function<void(const Event&)> sink_;
};

/// "t<ordinal>" or "t<ordinal>k<node>" per recorded decision, comma-joined
/// — the replayable schedule string printed with violations
/// (RPR_CHECK_REPLAY=...).
std::string format_schedule(const std::vector<DecisionRec>& trace);
std::vector<Choice> parse_schedule(const std::string& s);

/// Preemptions consumed by the first `upto` recorded decisions.
int count_preemptions(const std::vector<DecisionRec>& trace,
                      std::size_t upto);

}  // namespace rpr::check
