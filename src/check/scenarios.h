// Canned model-checking scenarios over the real engines, shared by the
// `rpr_check` tool and the model-check test suite.
//
// Each factory returns a check::Scenario obeying the explorer's contract
// (fresh state per run, deterministic checked-thread ordinals, joined
// before return — see check/explore.h). Scenarios are deliberately tiny:
// stateless model checking re-executes the scenario once per explored
// schedule, so the plans here are the smallest ones that still stream
// slices through every instrumented path.
#pragma once

#include <cstdint>
#include <vector>

#include "check/explore.h"

namespace rpr::check::scenarios {

/// Minimal slice-streamed testbed repair: 2 racks x 2 nodes, four plan ops
/// (two reads, one cross-rack send, one combine), `slices` slices per
/// value — four checked threads. A completed run's combined bytes must
/// equal the XOR of the two source blocks; a fault-aborted run must blame
/// an explorer-killed node. Violations are raised via ScenarioCtx::fail.
Scenario testbed_micro(std::size_t slices = 2);

/// Node ids a fault-exploring run of testbed_micro may kill (the two
/// nodes whose loss exercises distinct failure paths: the combine's node
/// and the cross-rack sender).
std::vector<std::uint32_t> testbed_micro_fault_candidates();

/// Full resilient session on the slice-streamed testbed: RS(4,2), one
/// failed block, driven by repair::execute_resilient_with. With
/// `kill_destination` the replacement node is dead from t = 0, so every
/// schedule's first attempt aborts, banks the finished reads
/// (EventKind::kBankFold reaches the oracles), re-plans to a new
/// destination and completes — the kDropBank mutation therefore trips the
/// banked-partial oracle on the very first explored schedule. The rebuilt
/// block must be byte-identical to the reference on every schedule.
Scenario resilient_testbed(bool kill_destination);

}  // namespace rpr::check::scenarios
