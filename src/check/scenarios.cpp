#include "check/scenarios.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "repair/plan.h"
#include "repair/planner.h"
#include "repair/resilient.h"
#include "rs/rs_code.h"
#include "runtime/testbed.h"
#include "topology/cluster.h"
#include "topology/placement.h"
#include "util/units.h"

namespace rpr::check::scenarios {

namespace {

/// Deterministic pseudo-random bytes (no global RNG state: every explored
/// run must see identical inputs).
rs::Block pattern_block(std::size_t size, std::uint8_t seed) {
  rs::Block b(size);
  std::uint8_t x = seed;
  for (auto& byte : b) {
    x = static_cast<std::uint8_t>(x * 167u + 41u);
    byte = x;
  }
  return b;
}

/// Fast testbed params for scheduled runs: huge time_scale turns paced
/// sleeps into nanoseconds, so wall time per explored schedule is spawn +
/// scheduling cost, not pacing.
runtime::TestbedParams fast_params(std::size_t racks, std::size_t slice) {
  runtime::TestbedParams p;
  p.net = runtime::RegionNet::uniform(racks, util::Bandwidth::gbps(10),
                                      util::Bandwidth::gbps(1));
  p.time_scale = 1 << 20;
  p.slice_size = slice;
  p.retry.base_backoff_s = 1e-6;
  return p;
}

}  // namespace

Scenario testbed_micro(std::size_t slices) {
  return [slices](ScenarioCtx& ctx) {
    constexpr std::size_t kSlice = 1024;
    const std::size_t block = kSlice * (slices == 0 ? 1 : slices);

    // 2 racks x (1 slot + 1 spare): nodes 0,1 in rack 0 and 2,3 in rack 1.
    topology::Cluster cluster(2, 1, 1);
    repair::RepairPlan plan;
    plan.block_size = block;
    const repair::OpId r0 = plan.read(0, 0, 1, "read.b0");
    const repair::OpId r1 = plan.read(2, 1, 1, "read.b1");
    const repair::OpId s1 = plan.send(r1, 2, 0, "send.cross");
    const repair::OpId c0 = plan.combine(0, {r0, s1}, false, "combine");

    std::vector<rs::Block> stripe(2);
    stripe[0] = pattern_block(block, 3);
    stripe[1] = pattern_block(block, 59);
    rs::Block expect(block);
    for (std::size_t i = 0; i < block; ++i) {
      expect[i] = static_cast<std::uint8_t>(stripe[0][i] ^ stripe[1][i]);
    }

    runtime::Testbed bed(cluster, fast_params(2, kSlice));
    const std::vector<repair::OpId> outs{c0};
    runtime::TestbedResult res;
    bool ran = false;
    ctx.shield([&] {
      res = bed.execute(plan, outs, stripe);
      ran = true;
    });
    if (ctx.aborted() || !ran) return;

    if (res.abort.has_value()) {
      const auto dead = static_cast<std::uint32_t>(res.abort->dead_node);
      if (!ctx.scheduler().node_killed(dead)) {
        ctx.fail("abort blamed node " + std::to_string(dead) +
                 ", which was never killed");
      }
      return;
    }
    if (res.outputs.size() != 1 || res.outputs[0] != expect) {
      ctx.fail("rebuilt bytes differ from the reference (testbed_micro)");
    }
  };
}

std::vector<std::uint32_t> testbed_micro_fault_candidates() {
  // Node 0 hosts the combine (killing it makes the output unreachable);
  // node 2 is the cross-rack sender (killing it interrupts the stream).
  return {0, 2};
}

Scenario resilient_testbed(bool kill_destination) {
  return [kill_destination](ScenarioCtx& ctx) {
    constexpr std::size_t kSlice = 512;
    constexpr std::size_t kBlock = 1024;

    rs::RSCode code(rs::CodeConfig{4, 2});
    const topology::PlacedStripe placed = topology::make_placed_stripe(
        {4, 2}, topology::PlacementPolicy::kRpr);

    std::vector<rs::Block> stripe(code.config().total());
    for (std::size_t b = 0; b < code.config().n; ++b) {
      stripe[b] = pattern_block(kBlock, static_cast<std::uint8_t>(17 + b));
    }
    code.encode_stripe(stripe);

    repair::RepairProblem problem;
    problem.code = &code;
    problem.placement = &placed.placement;
    problem.block_size = kBlock;
    problem.failed = {0};
    problem.choose_default_replacements();
    const std::unique_ptr<repair::Planner> planner =
        repair::make_planner(repair::Scheme::kRpr);

    runtime::TestbedParams p = fast_params(placed.cluster.racks(), kSlice);
    if (kill_destination) {
      // Dead before the first slice moves: every schedule's first attempt
      // aborts at the destination, banks the finished reads, re-plans.
      p.faults.kills.push_back({problem.replacements[0], 0.0});
    }
    runtime::Testbed bed(placed.cluster, p);

    repair::ResilientOutcome outcome;
    bool ran = false;
    ctx.shield([&] {
      outcome = repair::execute_resilient_with(bed, problem, *planner,
                                               stripe, {});
      ran = true;
    });
    if (ctx.aborted() || !ran) return;

    if (outcome.outputs.size() != 1 || outcome.outputs[0] != stripe[0]) {
      ctx.fail("rebuilt block differs from the reference "
               "(resilient_testbed)");
    }
  };
}

}  // namespace rpr::check::scenarios
