#include "check/scheduler.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rpr::check {

namespace detail {
std::atomic<Scheduler*> g_scheduler{nullptr};
std::atomic<std::uint32_t> g_mutations{0};
std::atomic<std::uintptr_t> g_scope_gen{0};
thread_local bool t_checked = false;
}  // namespace detail

namespace {

std::mutex g_observer_mu;
EventObserver g_observer;
std::atomic<bool> g_has_observer{false};

}  // namespace

void install(Scheduler* s) {
  detail::g_scheduler.store(s, std::memory_order_release);
}

void observe(const Event& e) {
  if (Scheduler* s = installed()) s->observe(e);
  if (g_has_observer.load(std::memory_order_acquire)) {
    std::scoped_lock lock(g_observer_mu);
    if (g_observer) g_observer(e);
  }
}

void set_event_observer(EventObserver fn) {
  std::scoped_lock lock(g_observer_mu);
  g_observer = std::move(fn);
  g_has_observer.store(static_cast<bool>(g_observer),
                       std::memory_order_release);
}

void set_mutations(std::uint32_t mask) {
  detail::g_mutations.store(mask, std::memory_order_relaxed);
}

namespace detail {

void run_checked_impl(int ordinal, const char* name,
                      const std::function<void()>& fn) {
  Scheduler* s = installed();
  if (s == nullptr) {
    fn();
    return;
  }
  t_checked = true;
  try {
    s->register_thread(ordinal, name);
  } catch (const AbortRun&) {
    t_checked = false;
    return;
  }
  try {
    fn();
  } catch (const AbortRun&) {
    // Run aborted (violation / deadlock / replay end): unwind quietly.
  } catch (const std::exception& e) {
    s->fail_run(std::string("unexpected exception on checked thread ") +
                name + ": " + e.what());
  } catch (...) {
    s->fail_run(std::string("unexpected exception on checked thread ") +
                name);
  }
  try {
    s->deregister_thread();
  } catch (const AbortRun&) {
  }
  t_checked = false;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// CoopScheduler

struct CoopScheduler::Rec {
  int ordinal = -1;
  const char* name = "";
  bool exited = false;
  bool blocked = false;
  std::uintptr_t blocked_obj = 0;
  Point pending{PointKind::kStep, 0, 0, "start"};
  bool go = false;
  std::condition_variable cv;
};

thread_local CoopScheduler::Rec* CoopScheduler::t_rec = nullptr;

CoopScheduler::CoopScheduler(SchedOptions opts, std::vector<Choice> prefix)
    : opts_(std::move(opts)), prefix_(std::move(prefix)) {
  for (const std::uint32_t n : opts_.fault_candidates) {
    if (n >= 64) {
      throw std::invalid_argument(
          "CoopScheduler: fault candidate node ids must be < 64");
    }
  }
}

CoopScheduler::~CoopScheduler() = default;

void CoopScheduler::set_event_sink(std::function<void(const Event&)> sink) {
  std::scoped_lock lock(sink_mu_);
  sink_ = std::move(sink);
}

void CoopScheduler::fail_locked(const std::string& msg) {
  if (!has_violation_) {
    has_violation_ = true;
    violation_ = msg;
  }
  abort_ = true;
  current_ = -1;
  for (auto& [ord, r] : recs_) {
    (void)ord;
    r->cv.notify_all();
  }
}

void CoopScheduler::fail_run(const std::string& msg) {
  std::unique_lock lk(mu_);
  fail_locked(msg);
}

bool CoopScheduler::violated() const {
  std::unique_lock lk(mu_);
  return has_violation_;
}

std::string CoopScheduler::violation_message() const {
  std::unique_lock lk(mu_);
  return violation_;
}

bool CoopScheduler::diverged() const {
  std::unique_lock lk(mu_);
  return diverged_;
}

bool CoopScheduler::node_killed(std::uint32_t node) const {
  if (node >= 64) return false;
  return (killed_mask_.load(std::memory_order_acquire) &
          (std::uint64_t{1} << node)) != 0;
}

void CoopScheduler::observe(const Event& e) {
  std::scoped_lock lock(sink_mu_);
  if (sink_) sink_(e);
}

void CoopScheduler::expect_threads(std::size_t n) {
  std::unique_lock lk(mu_);
  if (abort_) return;
  for (auto it = recs_.begin(); it != recs_.end();) {
    if (it->second->exited) {
      it = recs_.erase(it);
    } else {
      fail_locked("expect_threads called while checked threads are live");
      return;
    }
  }
  expected_ = n;
  registered_ = 0;
  started_ = false;
  current_ = -1;
}

void CoopScheduler::register_thread(int ordinal, const char* name) {
  std::unique_lock lk(mu_);
  if (abort_) throw AbortRun{};
  if (expected_ == 0) {
    fail_locked("register_thread before expect_threads");
    throw AbortRun{};
  }
  if (recs_.count(ordinal) != 0) {
    fail_locked(std::string("duplicate checked-thread ordinal for ") + name);
    throw AbortRun{};
  }
  auto rec = std::make_unique<Rec>();
  Rec* r = rec.get();
  r->ordinal = ordinal;
  r->name = name;
  recs_[ordinal] = std::move(rec);
  t_rec = r;
  ++registered_;
  if (registered_ == expected_ && !started_) {
    started_ = true;
    decide(lk);  // initial decision among the full wave
  }
  park(lk, r);
}

void CoopScheduler::deregister_thread() {
  std::unique_lock lk(mu_);
  Rec* r = t_rec;
  t_rec = nullptr;
  if (r == nullptr) return;
  r->exited = true;
  if (abort_) return;
  bool any_live = false;
  for (auto& [ord, rec] : recs_) {
    (void)ord;
    if (!rec->exited) any_live = true;
  }
  if (!any_live) {
    current_ = -1;
    return;
  }
  decide(lk);
}

void CoopScheduler::yield(const Point& p) {
  if ((opts_.branch_mask & kind_bit(p.kind)) == 0) {
    // Non-branching kind: cheap abort check only (no decision, no trace).
    if (abort_) throw AbortRun{};
    return;
  }
  std::unique_lock lk(mu_);
  if (abort_) throw AbortRun{};
  Rec* r = t_rec;
  if (r == nullptr || !started_) return;
  r->pending = p;
  decide(lk);
  park(lk, r);
}

void CoopScheduler::block_on(const Point& p) {
  std::unique_lock lk(mu_);
  if (abort_) throw AbortRun{};
  Rec* r = t_rec;
  if (r == nullptr || !started_) {
    fail_locked("block_on from an unregistered thread");
    throw AbortRun{};
  }
  r->pending = p;
  r->blocked = true;
  r->blocked_obj = p.obj;
  decide(lk);
  park(lk, r);
}

void CoopScheduler::notify_obj(std::uintptr_t obj) {
  std::unique_lock lk(mu_);
  if (abort_) return;
  for (auto& [ord, r] : recs_) {
    (void)ord;
    if (!r->exited && r->blocked && r->blocked_obj == obj) {
      r->blocked = false;
      r->blocked_obj = 0;
    }
  }
}

void CoopScheduler::park(std::unique_lock<std::mutex>& lk, Rec* r) {
  r->cv.wait(lk, [&] { return r->go || abort_; });
  if (abort_) throw AbortRun{};
  r->go = false;
}

void CoopScheduler::decide(std::unique_lock<std::mutex>& lk) {
  (void)lk;
  std::vector<Rec*> enabled;
  for (auto& [ord, r] : recs_) {
    (void)ord;
    if (!r->exited && !r->blocked) enabled.push_back(r.get());
  }
  if (enabled.empty()) {
    std::string blocked;
    for (auto& [ord, r] : recs_) {
      (void)ord;
      if (r->exited || !r->blocked) continue;
      if (!blocked.empty()) blocked += ", ";
      blocked += "t" + std::to_string(r->ordinal) + " at " +
                 r->pending.label;
    }
    if (!blocked.empty()) {
      fail_locked("deadlock: all checked threads blocked (" + blocked + ")");
      throw AbortRun{};
    }
    current_ = -1;
    return;
  }

  Rec* cur = nullptr;
  if (current_ >= 0) {
    auto it = recs_.find(current_);
    if (it != recs_.end() && !it->second->exited && !it->second->blocked) {
      cur = it->second.get();
    }
  }

  DecisionRec d;
  d.current = current_;
  d.preemptive = cur != nullptr;
  for (Rec* r : enabled) {
    d.options.push_back(Choice{r->ordinal, -1});
    d.opt_obj.push_back(r->pending.obj);
    d.opt_scope.push_back(r->pending.scope);
    d.opt_label.push_back(r->pending.label);
  }
  if (faults_used_ < opts_.fault_budget) {
    const int cont = cur != nullptr ? cur->ordinal : enabled.front()->ordinal;
    for (const std::uint32_t node : opts_.fault_candidates) {
      if (node_killed(node)) continue;
      d.options.push_back(Choice{cont, static_cast<std::int32_t>(node)});
      // Fault injections are dependent with everything: never slept.
      d.opt_obj.push_back(~std::uintptr_t{0});
      d.opt_scope.push_back(~std::uintptr_t{0});
      d.opt_label.push_back("inject-kill");
    }
  }

  std::size_t take = 0;
  if (d.options.size() > 1) {
    const auto default_take = [&]() -> std::size_t {
      if (cur != nullptr) {
        for (std::size_t i = 0; i < d.options.size(); ++i) {
          if (d.options[i] == Choice{cur->ordinal, -1}) return i;
        }
      }
      return 0;
    };
    if (step_ < prefix_.size()) {
      const Choice want = prefix_[step_];
      const auto pos = std::find(d.options.begin(), d.options.end(), want);
      if (pos == d.options.end()) {
        diverged_ = true;
        if (opts_.strict_replay) {
          fail_locked("replay diverged at step " + std::to_string(step_));
          throw AbortRun{};
        }
        take = default_take();
      } else {
        take = static_cast<std::size_t>(pos - d.options.begin());
      }
    } else {
      take = default_take();
    }
    ++step_;
    d.taken = take;
    trace_.push_back(d);
  }

  const Choice chosen = d.options[take];
  if (chosen.kill >= 0) {
    killed_mask_.fetch_or(std::uint64_t{1}
                              << static_cast<std::uint32_t>(chosen.kill),
                          std::memory_order_acq_rel);
    ++faults_used_;
  }
  current_ = chosen.thread;
  Rec* next = recs_.at(chosen.thread).get();
  next->go = true;
  next->cv.notify_all();
}

// ---------------------------------------------------------------------------
// Schedule string

std::string format_schedule(const std::vector<DecisionRec>& trace) {
  std::string out;
  for (const DecisionRec& d : trace) {
    if (!out.empty()) out += ",";
    const Choice& c = d.options[d.taken];
    out += "t" + std::to_string(c.thread);
    if (c.kill >= 0) out += "k" + std::to_string(c.kill);
  }
  return out;
}

std::vector<Choice> parse_schedule(const std::string& s) {
  std::vector<Choice> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    if (tok[0] != 't') {
      throw std::invalid_argument("bad schedule token: " + tok);
    }
    Choice c;
    const std::size_t kpos = tok.find('k', 1);
    c.thread = std::stoi(tok.substr(1, kpos == std::string::npos
                                           ? std::string::npos
                                           : kpos - 1));
    if (kpos != std::string::npos) {
      c.kill = std::stoi(tok.substr(kpos + 1));
    }
    out.push_back(c);
  }
  return out;
}

int count_preemptions(const std::vector<DecisionRec>& trace,
                      std::size_t upto) {
  int n = 0;
  const std::size_t lim = std::min(upto, trace.size());
  for (std::size_t i = 0; i < lim; ++i) {
    const DecisionRec& d = trace[i];
    if (d.preemptive && d.options[d.taken].thread != d.current) ++n;
  }
  return n;
}

}  // namespace rpr::check
