#include "check/explore.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>

#include "check/oracles.h"

namespace rpr::check {

namespace {

struct RunOutcome {
  bool violated = false;
  std::string message;
  std::string schedule;
  std::vector<DecisionRec> trace;
};

RunOutcome run_one(const Scenario& scenario, std::vector<Choice> prefix,
                   const ExploreOptions& opts, bool strict) {
  CoopScheduler sched(
      SchedOptions{opts.branch_mask, opts.fault_budget,
                   opts.fault_candidates, strict},
      std::move(prefix));
  OracleSet oracles;
  sched.set_event_sink([&oracles, &sched](const Event& e) {
    oracles.on_event(e, [&sched](const std::string& msg) {
      sched.fail_run(msg);
    });
  });
  install(&sched);
  reset_scope_ids();
  ScenarioCtx ctx(sched);
  try {
    scenario(ctx);
  } catch (const std::exception& e) {
    if (!sched.violated()) {
      sched.fail_run(std::string("scenario threw: ") + e.what());
    }
  } catch (...) {
    if (!sched.violated()) sched.fail_run("scenario threw");
  }
  install(nullptr);

  RunOutcome out;
  out.trace = sched.trace();
  out.violated = sched.violated();
  out.message = sched.violation_message();
  out.schedule = format_schedule(out.trace);
  return out;
}

struct SleepEntry {
  int thread;
  std::uintptr_t obj;
  std::uintptr_t scope;
};

/// Two choices are independent iff they act on different objects in
/// different (or no) scopes; fault injections (obj = ~0) are dependent
/// with everything. Conservative: accesses sharing an ExecState scope are
/// never treated as independent, because a publish enables waiters of
/// every op in that state.
bool independent(const SleepEntry& e, std::uintptr_t obj,
                 std::uintptr_t scope) {
  constexpr auto kAll = ~std::uintptr_t{0};
  if (e.obj == kAll || obj == kAll) return false;
  if (e.obj == obj) return false;
  if (e.scope != 0 && scope != 0 && e.scope == scope) return false;
  return true;
}

struct Node {
  DecisionRec d;
  std::set<std::size_t> explored;
  std::vector<SleepEntry> sleep;
  int preempts_before = 0;
};

int switch_cost(const DecisionRec& d, std::size_t j) {
  return d.preemptive && d.options[j].thread != d.current ? 1 : 0;
}

std::vector<SleepEntry> child_sleep(const Node& n, std::size_t taken,
                                    bool enabled) {
  if (!enabled) return {};
  std::vector<SleepEntry> base = n.sleep;
  for (const std::size_t m : n.explored) {
    base.push_back(SleepEntry{n.d.options[m].thread, n.d.opt_obj[m],
                              n.d.opt_scope[m]});
  }
  std::vector<SleepEntry> out;
  for (const SleepEntry& e : base) {
    if (independent(e, n.d.opt_obj[taken], n.d.opt_scope[taken])) {
      out.push_back(e);
    }
  }
  return out;
}

bool options_match(const DecisionRec& a, const DecisionRec& b) {
  return a.options == b.options;
}

}  // namespace

ExploreResult explore(const Scenario& scenario, const ExploreOptions& opts) {
  ExploreResult result;
  const auto t0 = std::chrono::steady_clock::now();
  const auto out_of_budget = [&] {
    if (result.schedules >= opts.max_schedules) return true;
    if (opts.time_budget_s > 0.0) {
      const double s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      if (s >= opts.time_budget_s) return true;
    }
    return false;
  };

  RunOutcome first = run_one(scenario, {}, opts, /*strict=*/false);
  ++result.schedules;
  result.max_decisions = first.trace.size();
  if (first.violated) {
    result.violation = Violation{first.message, first.schedule};
    return result;
  }

  std::vector<Node> path;
  path.reserve(first.trace.size());
  for (const DecisionRec& d : first.trace) {
    Node n;
    n.d = d;
    if (!path.empty()) {
      const Node& p = path.back();
      n.sleep = child_sleep(p, p.d.taken, opts.sleep_sets);
      n.preempts_before = p.preempts_before + switch_cost(p.d, p.d.taken);
    }
    path.push_back(std::move(n));
  }

  while (true) {
    if (out_of_budget()) return result;  // complete stays false

    // Backtrack to the deepest node with an untried, unslept, in-bound
    // alternative; every subtree we pop past is fully explored.
    std::size_t pick = 0;
    bool found = false;
    while (!path.empty() && !found) {
      Node& n = path.back();
      n.explored.insert(n.d.taken);
      for (std::size_t j = 0; j < n.d.options.size() && !found; ++j) {
        if (n.explored.count(j) != 0) continue;
        if (n.preempts_before + switch_cost(n.d, j) >
            opts.preemption_bound) {
          continue;
        }
        bool slept = false;
        for (const SleepEntry& e : n.sleep) {
          if (e.thread == n.d.options[j].thread &&
              e.obj == n.d.opt_obj[j]) {
            slept = true;
            break;
          }
        }
        if (slept) continue;
        pick = j;
        found = true;
      }
      if (!found) path.pop_back();
    }
    if (!found) {
      result.complete = true;
      return result;
    }

    path.back().d.taken = pick;
    std::vector<Choice> prefix;
    prefix.reserve(path.size());
    for (const Node& n : path) prefix.push_back(n.d.options[n.d.taken]);

    RunOutcome run = run_one(scenario, prefix, opts, /*strict=*/true);
    ++result.schedules;
    result.max_decisions = std::max(result.max_decisions, run.trace.size());
    if (run.violated) {
      result.violation = Violation{run.message, run.schedule};
      return result;
    }
    if (run.trace.size() < path.size()) {
      result.violation = Violation{
          "internal: scenario is nondeterministic (trace shorter than "
          "forced prefix)",
          run.schedule};
      return result;
    }
    for (std::size_t k = 0; k < path.size(); ++k) {
      if (!options_match(run.trace[k], path[k].d) ||
          run.trace[k].taken != path[k].d.taken) {
        result.violation = Violation{
            "internal: scenario is nondeterministic at decision " +
                std::to_string(k),
            run.schedule};
        return result;
      }
    }
    for (std::size_t k = path.size(); k < run.trace.size(); ++k) {
      Node n;
      n.d = run.trace[k];
      const Node& p = path.back();
      n.sleep = child_sleep(p, p.d.taken, opts.sleep_sets);
      n.preempts_before = p.preempts_before + switch_cost(p.d, p.d.taken);
      path.push_back(std::move(n));
    }
  }
}

std::optional<Violation> replay(const Scenario& scenario,
                                const std::string& schedule,
                                const ExploreOptions& opts) {
  RunOutcome run =
      run_one(scenario, parse_schedule(schedule), opts, /*strict=*/true);
  if (!run.violated) return std::nullopt;
  return Violation{run.message, run.schedule};
}

}  // namespace rpr::check
