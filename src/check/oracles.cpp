#include "check/oracles.h"

namespace rpr::check {

namespace {

std::string op_tag(const Event& e) {
  return "op " + std::to_string(e.op);
}

}  // namespace

void OracleSet::on_event(const Event& e, const FailFn& fail) {
  const std::pair<std::uint64_t, std::uint64_t> key{e.src, e.op};
  switch (e.kind) {
    case EventKind::kSliceCounter: {
      if (e.b < e.a) {
        fail("slice counter moved backwards on " + op_tag(e) + ": " +
             std::to_string(e.a) + " -> " + std::to_string(e.b));
        return;
      }
      counter_[key] = e.b;
      break;
    }
    case EventKind::kCommit: {
      if (e.duplicate) {
        fail("double commit on " + op_tag(e) +
             " (first-wins resolution violated: a second producer "
             "overwrote a resolved value)");
        return;
      }
      if (++commits_[key] > 1) {
        fail("two first-wins winners on " + op_tag(e));
        return;
      }
      break;
    }
    case EventKind::kFail: {
      if (e.duplicate) {
        fail("op failed after resolution on " + op_tag(e));
        return;
      }
      break;
    }
    case EventKind::kBankFold: {
      if (e.b < e.a) {
        fail("banked partial lost across a re-plan: " +
             std::to_string(e.a) + " usable finished value(s), only " +
             std::to_string(e.b) + " folded");
        return;
      }
      break;
    }
  }
}

int OracleSet::commits(std::uint64_t src, std::uint64_t op) const {
  const auto it = commits_.find({src, op});
  return it == commits_.end() ? 0 : it->second;
}

}  // namespace rpr::check
