#include "check/lock_graph.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#if defined(__GLIBC__)
#include <execinfo.h>
#include <unistd.h>
#endif

#include "check/scheduler.h"

namespace rpr::check {

namespace {

std::atomic<bool> g_lock_graph_enabled{false};

/// Locks currently held by this thread, with the (symbolized-on-demand)
/// acquisition stack captured when the graph was enabled.
struct HeldLock {
  const void* mutex;
  const char* cls;
  std::string stack;
};
thread_local std::vector<HeldLock>* t_held = nullptr;

std::vector<HeldLock>& held() {
  if (t_held == nullptr) t_held = new std::vector<HeldLock>();
  return *t_held;
}

/// Captures and symbolizes the current call stack (skipping the capture
/// machinery itself). Frames are joined with '|' so an edge dumps as one
/// tab-separated line.
std::string capture_stack() {
#if defined(__GLIBC__)
  constexpr int kDepth = 12;
  void* frames[kDepth];
  const int n = backtrace(frames, kDepth);
  char** symbols = backtrace_symbols(frames, n);
  if (symbols == nullptr) return "<backtrace failed>";
  std::string out;
  for (int i = 2; i < n; ++i) {  // skip capture_stack + on_acquire
    if (!out.empty()) out += "|";
    out += symbols[i];
  }
  std::free(symbols);  // NOLINT(cppcoreguidelines-no-malloc)
  return out;
#else
  return "<no backtrace on this platform>";
#endif
}

std::string sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\t' || c == '\n') c = ' ';
  }
  return out;
}

const char* kDumpHeader = "# rpr lock-graph v1";

struct EnvInit {
  EnvInit() {
    const char* on = std::getenv("RPR_LOCK_GRAPH");
    if (on == nullptr || on[0] == '\0' || on[0] == '0') return;
    g_lock_graph_enabled.store(true, std::memory_order_release);
    if (std::getenv("RPR_LOCK_GRAPH_OUT") != nullptr) {
      std::atexit([] {
        const char* path = std::getenv("RPR_LOCK_GRAPH_OUT");
        if (path == nullptr) return;
        std::string p(path);
        if (!p.empty() && p.back() == '/') {
#if defined(__GLIBC__)
          p += "lock_graph." + std::to_string(getpid()) + ".txt";
#else
          p += "lock_graph.txt";
#endif
        }
        std::ofstream os(p);
        if (os) LockGraph::instance().dump(os);
      });
    }
  }
};
const EnvInit g_env_init;

}  // namespace

bool lock_graph_enabled() {
  return g_lock_graph_enabled.load(std::memory_order_acquire);
}

void lock_graph_set_enabled(bool on) {
  g_lock_graph_enabled.store(on, std::memory_order_release);
}

void lock_graph_note_acquire(const void* m, const char* cls) {
  LockGraph::instance().on_acquire(m, cls);
}

void lock_graph_note_release(const void* m) {
  LockGraph::instance().on_release(m);
}

LockGraph& LockGraph::instance() {
  static LockGraph* g = new LockGraph();  // leaked: outlives atexit dump
  return *g;
}

void LockGraph::on_acquire(const void* m, const char* cls) {
  std::vector<HeldLock>& h = held();
  const std::string stack = capture_stack();
  if (!h.empty()) {
    std::scoped_lock lock(mu_);
    for (const HeldLock& held_lock : h) {
      LockEdge& e = edges_[{held_lock.cls, cls}];
      if (e.count == 0) {
        e.from = held_lock.cls;
        e.to = cls;
        e.from_stack = held_lock.stack;
        e.to_stack = stack;
      }
      ++e.count;
    }
  }
  h.push_back(HeldLock{m, cls, stack});
}

void LockGraph::on_release(const void* m) {
  std::vector<HeldLock>& h = held();
  // Release order may differ from acquisition order; erase the newest
  // matching entry.
  for (std::size_t i = h.size(); i > 0; --i) {
    if (h[i - 1].mutex == m) {
      h.erase(h.begin() + static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
}

void LockGraph::clear() {
  std::scoped_lock lock(mu_);
  edges_.clear();
}

std::vector<LockEdge> LockGraph::edges() const {
  std::scoped_lock lock(mu_);
  std::vector<LockEdge> out;
  out.reserve(edges_.size());
  for (const auto& [key, e] : edges_) {
    (void)key;
    out.push_back(e);
  }
  return out;
}

std::vector<LockCycle> LockGraph::cycles() const {
  const std::vector<LockEdge> all = edges();
  // Tarjan SCC over the class graph.
  std::map<std::string, std::vector<const LockEdge*>> adj;
  std::set<std::string> nodes;
  for (const LockEdge& e : all) {
    adj[e.from].push_back(&e);
    nodes.insert(e.from);
    nodes.insert(e.to);
  }
  std::map<std::string, int> index;
  std::map<std::string, int> low;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> sccs;
  int next = 0;

  struct Frame {
    std::string node;
    std::size_t edge = 0;
  };
  for (const std::string& root : nodes) {
    if (index.count(root) != 0) continue;
    std::vector<Frame> call;
    call.push_back({root, 0});
    index[root] = low[root] = next++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!call.empty()) {
      Frame& f = call.back();
      const auto& out_edges = adj[f.node];
      if (f.edge < out_edges.size()) {
        const std::string& to = out_edges[f.edge]->to;
        ++f.edge;
        if (index.count(to) == 0) {
          index[to] = low[to] = next++;
          stack.push_back(to);
          on_stack[to] = true;
          call.push_back({to, 0});
        } else if (on_stack[to]) {
          low[f.node] = std::min(low[f.node], index[to]);
        }
      } else {
        if (low[f.node] == index[f.node]) {
          std::vector<std::string> scc;
          while (true) {
            const std::string n = stack.back();
            stack.pop_back();
            on_stack[n] = false;
            scc.push_back(n);
            if (n == f.node) break;
          }
          sccs.push_back(std::move(scc));
        }
        const std::string done = f.node;
        call.pop_back();
        if (!call.empty()) {
          low[call.back().node] =
              std::min(low[call.back().node], low[done]);
        }
      }
    }
  }

  std::vector<LockCycle> out;
  for (auto& scc : sccs) {
    const std::set<std::string> members(scc.begin(), scc.end());
    LockCycle c;
    for (const LockEdge& e : all) {
      if (members.count(e.from) == 0 || members.count(e.to) == 0) continue;
      if (scc.size() > 1 || e.from == e.to) c.edges.push_back(e);
    }
    if (c.edges.empty()) continue;
    c.classes = std::move(scc);
    out.push_back(std::move(c));
  }
  return out;
}

std::string LockGraph::report() const {
  std::ostringstream os;
  const std::vector<LockEdge> all = edges();
  os << "lock-acquisition graph: " << all.size() << " edge(s)\n";
  for (const LockEdge& e : all) {
    os << "  " << e.from << " -> " << e.to << "  (x" << e.count << ")\n";
  }
  const std::vector<LockCycle> cyc = cycles();
  if (cyc.empty()) {
    os << "no cycles: acquisition order is a DAG\n";
    return os.str();
  }
  for (const LockCycle& c : cyc) {
    os << "CYCLE (potential deadlock) among:";
    for (const std::string& cls : c.classes) os << " " << cls;
    os << "\n";
    for (const LockEdge& e : c.edges) {
      os << "  " << e.from << " -> " << e.to << " witnessed by:\n";
      os << "    held " << e.from << " at: " << e.from_stack << "\n";
      os << "    took " << e.to << " at: " << e.to_stack << "\n";
    }
  }
  return os.str();
}

void LockGraph::dump(std::ostream& os) const {
  os << kDumpHeader << "\n";
  for (const LockEdge& e : edges()) {
    os << "edge\t" << sanitize(e.from) << "\t" << sanitize(e.to) << "\t"
       << e.count << "\t" << sanitize(e.from_stack) << "\t"
       << sanitize(e.to_stack) << "\n";
  }
}

void LockGraph::merge(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string tag;
    std::string from;
    std::string to;
    std::string count;
    std::string fs;
    std::string ts;
    std::getline(ss, tag, '\t');
    if (tag != "edge") continue;
    std::getline(ss, from, '\t');
    std::getline(ss, to, '\t');
    std::getline(ss, count, '\t');
    std::getline(ss, fs, '\t');
    std::getline(ss, ts, '\t');
    std::scoped_lock lock(mu_);
    LockEdge& e = edges_[{from, to}];
    if (e.count == 0) {
      e.from = from;
      e.to = to;
      e.from_stack = fs;
      e.to_stack = ts;
    }
    e.count += std::strtoull(count.c_str(), nullptr, 10);
  }
}

std::string LockGraph::dot() const {
  std::set<std::pair<std::string, std::string>> hot;
  for (const LockCycle& c : cycles()) {
    for (const LockEdge& e : c.edges) hot.insert({e.from, e.to});
  }
  std::ostringstream os;
  os << "digraph locks {\n";
  for (const LockEdge& e : edges()) {
    os << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\""
       << e.count << "\"";
    if (hot.count({e.from, e.to}) != 0) os << ", color=red";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace rpr::check
