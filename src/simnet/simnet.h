// Discrete-event network simulator for rack-organized clusters.
//
// This is the stand-in for the paper's Simics + wondershaper setup (§5.1):
// it executes a DAG of block transfers and compute steps over the two-level
// topology and reports the makespan and traffic, deterministically.
//
// Resource model (matches the paper's "timestep" reasoning in Figs. 3-5):
//  * each node has one transmit port and one receive port; a port carries
//    one transfer at a time (store-and-forward of whole blocks);
//  * each rack's TOR uplink has one transmit and one receive channel for
//    cross-rack traffic: a rack can send one cross-rack transfer and receive
//    one cross-rack transfer concurrently, but two simultaneous incoming
//    cross-rack transfers serialize (this is why schedule 1 in Fig. 5 costs
//    3 t_c: r1, r2, r3 all target the recovery rack);
//  * transfer duration = bytes / inner-bandwidth (same rack) or
//    bytes / cross-bandwidth (different racks); same-node "transfers" are
//    free (local disk read, not modelled);
//  * compute steps occupy the node's CPU, one at a time.
//
// Scheduling is greedy and work-conserving: whenever a task's dependencies
// are done, it starts as soon as all of its ports are free, FIFO-ordered by
// (ready time, submission order). This realizes the greedy behaviour of the
// paper's Cross algorithm (§3.2): a planner only encodes the transfer DAG
// and the simulator starts every transfer at the earliest feasible moment.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "topology/cluster.h"
#include "util/units.h"

namespace rpr::simnet {

using TaskId = std::size_t;
inline constexpr TaskId kNoTask = std::numeric_limits<TaskId>::max();

enum class TaskKind { kTransfer, kCompute };

/// Which workload a task belongs to. Repair traffic is the reconstruction
/// DAG; foreground is the competing client-read workload the fleet
/// scheduler injects. Only repair traffic is subject to the arbiter.
enum class TrafficClass : std::uint8_t { kRepair = 0, kForeground = 1 };

/// Hierarchical token-bucket bandwidth arbiter. Each node TX/RX port and
/// each rack cross-TX/RX channel carries a deficit bucket for the repair
/// class: credit accrues at `repair_share` port-seconds per second (capped
/// at `burst_s`), a repair transfer may start once every port it occupies
/// has non-negative credit, and starting deducts the full port occupancy
/// (credit may go negative — the borrow is what throttles the *next*
/// repair transfer, so arbitrary transfer sizes never starve). Long-run
/// repair usage of every port is therefore at most `repair_share`,
/// regardless of task granularity. Foreground traffic is never gated.
struct ArbiterConfig {
  double repair_share = 1.0;  ///< (0, 1]; 1.0 disables gating
  double burst_s = 0.0;       ///< credit cap in port-seconds
};

struct TaskStats {
  TaskKind kind = TaskKind::kTransfer;
  std::string label;
  /// Where the task's result lives: transfer destination / compute node.
  topology::NodeId node = 0;
  /// Transfer source (equals `node` for computes and local reads).
  topology::NodeId from = 0;
  util::SimTime ready = 0;   ///< all dependencies finished
  util::SimTime start = 0;   ///< ports acquired
  util::SimTime finish = 0;  ///< done
  bool cross_rack = false;
  std::uint64_t bytes = 0;
  TrafficClass cls = TrafficClass::kRepair;
  int priority = 0;
  /// Plan-op / slice identity stamped by the lowering (tag_task); -1 when
  /// the task was submitted directly rather than lowered from a plan.
  std::int64_t op = -1;
  std::int64_t slice = -1;
  /// The task ids this task waited on — the causal edges the instrument
  /// layer turns into trace flow arrows and the critical-path DAG.
  std::vector<TaskId> deps;
};

struct RunResult {
  util::SimTime makespan = 0;
  std::uint64_t cross_rack_bytes = 0;
  std::uint64_t inner_rack_bytes = 0;
  std::size_t cross_rack_transfers = 0;
  std::size_t inner_rack_transfers = 0;
  /// Cross-rack bytes uploaded (sent) per rack: the load-balance metric the
  /// paper cares about (traditional repair concentrates everything on the
  /// recovery rack).
  std::vector<std::uint64_t> rack_upload_bytes;
  std::vector<std::uint64_t> rack_download_bytes;
  /// Transferred bytes split by workload class (both directions of split
  /// sum to cross_rack_bytes + inner_rack_bytes).
  std::uint64_t repair_bytes = 0;
  std::uint64_t foreground_bytes = 0;
  std::vector<TaskStats> tasks;  ///< indexed by TaskId
};

class SimNetwork {
 public:
  SimNetwork(topology::Cluster cluster, topology::NetworkParams params);

  /// Adds a block transfer from `from` to `to`. Starts after all `deps`.
  /// A same-node transfer completes instantly (local read).
  TaskId add_transfer(topology::NodeId from, topology::NodeId to,
                      std::uint64_t bytes, std::vector<TaskId> deps,
                      std::string label = {});

  /// Adds a compute step of fixed `duration` at node `at`.
  TaskId add_compute(topology::NodeId at, util::SimTime duration,
                     std::vector<TaskId> deps, std::string label = {});

  /// Convenience: compute duration for decoding `bytes` at the given speed.
  [[nodiscard]] util::SimTime decode_duration(std::uint64_t bytes,
                                              bool with_matrix) const;

  /// Stamps a task with the plan op (and slice) it was lowered from, so
  /// post-run telemetry can reconstruct per-op causality. slice = -1 means
  /// whole-value.
  void tag_task(TaskId id, std::int64_t op, std::int64_t slice);

  /// Straggler mode: every transfer departing `node` takes `factor` times
  /// longer (a degraded NIC or flapping TOR port). factor must be >= 1.
  void slow_node(topology::NodeId node, double factor);

  /// Slow-disk mode: every compute/decode step at `node` takes `factor`
  /// times longer (degraded storage feeding the GF kernels). factor >= 1.
  void slow_compute(topology::NodeId node, double factor);

  /// Assigns a task to a workload class (default kRepair). Repair
  /// transfers are gated by the arbiter when one is configured.
  void set_class(TaskId id, TrafficClass cls);

  /// Start-order priority among tasks that become ready at the same
  /// instant (higher starts first; default 0). Never preempts.
  void set_priority(TaskId id, int priority);

  /// The task may not start before this absolute sim time even if its
  /// dependencies are done — models arrival processes (stripe failures,
  /// client reads) without fake dependency edges.
  void set_earliest_start(TaskId id, util::SimTime at);

  /// Installs the bandwidth arbiter (see ArbiterConfig). repair_share
  /// must be in (0, 1]; 1.0 leaves repair ungated.
  void set_arbiter(ArbiterConfig cfg);

  /// Called during run() after each batch of simultaneous completions,
  /// with the ids that just finished. The hook may add new tasks (and
  /// set their class/priority/earliest_start); they are integrated into
  /// the running simulation, starting no earlier than `now`. This is the
  /// reactive entry point the fleet scheduler uses for admission control
  /// and degraded-read resolution.
  using FinishHook =
      std::function<void(util::SimTime now, std::span<const TaskId> done)>;
  void set_finish_hook(FinishHook hook);

  [[nodiscard]] const topology::Cluster& cluster() const noexcept {
    return cluster_;
  }
  [[nodiscard]] const topology::NetworkParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::size_t task_count() const noexcept {
    return tasks_.size();
  }

  /// Runs the simulation to completion. May be called once per instance.
  RunResult run();

 private:
  struct Task {
    TaskKind kind;
    topology::NodeId from = 0;
    topology::NodeId to = 0;
    std::uint64_t bytes = 0;
    util::SimTime duration = 0;  // computes only
    std::vector<TaskId> deps;
    std::string label;
    std::int64_t op = -1;
    std::int64_t slice = -1;
    TrafficClass cls = TrafficClass::kRepair;
    int priority = 0;
    util::SimTime earliest_start = 0;
    std::size_t unmet_deps = 0;
    std::vector<TaskId> dependents;
  };

  TaskId add_task(Task t);

  topology::Cluster cluster_;
  topology::NetworkParams params_;
  std::vector<Task> tasks_;
  /// Per-node outgoing-transfer slowdown (1.0 = healthy); empty when unused.
  std::vector<double> tx_slowdown_;
  /// Per-node compute slowdown (slow disk feeding decode); empty = unused.
  std::vector<double> compute_slowdown_;
  ArbiterConfig arbiter_;
  bool arbiter_enabled_ = false;
  FinishHook finish_hook_;
  /// Set while run() is active so add_task knows to defer dependency
  /// accounting to the in-run integration step.
  bool running_phase_ = false;
  bool ran_ = false;
};

}  // namespace rpr::simnet
