// Fluid (max-min fair-sharing) network model.
//
// The paper's cost model — and SimNetwork — serialize transfers on ports:
// one block at a time per NIC / TOR uplink, which is where the "timestep"
// arithmetic of §3/§4 comes from. Real TCP fabrics behave differently:
// concurrent flows *share* links. This module re-executes the same task
// graphs under progressive max-min fair sharing so the repository can test
// whether the paper's conclusions depend on the contention model (they do
// not — see bench/ablation_linkmodel):
//
//  * every active transfer is a fluid flow with remaining bytes;
//  * capacities: each node has a TX and an RX interface at the inner-rack
//    bandwidth; each rack has a TOR uplink TX and RX at the cross-rack
//    bandwidth shared by that rack's cross-rack flows;
//  * rates are assigned by water-filling (repeatedly saturate the tightest
//    resource), re-solved whenever a flow starts or finishes;
//  * computes share their node's CPU evenly.
//
// The event loop advances to the next flow/compute completion, so runs are
// deterministic and exact up to integer-nanosecond rounding.
#pragma once

#include "obs/recorder.h"
#include "simnet/simnet.h"

namespace rpr::simnet {

/// Same construction/API shape as SimNetwork, different run() semantics.
class FluidNetwork {
 public:
  FluidNetwork(topology::Cluster cluster, topology::NetworkParams params);

  /// Attaches a recorder that samples each rack uplink's aggregate TX/RX
  /// bandwidth share (Gb/s) at every rate re-solve — the time-varying link
  /// utilization that end-of-run aggregates cannot show. Must be set before
  /// run(); pass nullptr to detach. The recorder must outlive run().
  void set_recorder(obs::Recorder* rec) noexcept { recorder_ = rec; }

  TaskId add_transfer(topology::NodeId from, topology::NodeId to,
                      std::uint64_t bytes, std::vector<TaskId> deps,
                      std::string label = {});
  TaskId add_compute(topology::NodeId at, util::SimTime duration,
                     std::vector<TaskId> deps, std::string label = {});
  /// Stamps a task with the plan op/slice it was lowered from (see
  /// SimNetwork::tag_task).
  void tag_task(TaskId id, std::int64_t op, std::int64_t slice);
  [[nodiscard]] util::SimTime decode_duration(std::uint64_t bytes,
                                              bool with_matrix) const;

  [[nodiscard]] const topology::Cluster& cluster() const noexcept {
    return cluster_;
  }

  RunResult run();

 private:
  struct Task {
    TaskKind kind;
    topology::NodeId from = 0;
    topology::NodeId to = 0;
    double remaining = 0;  // bytes (transfers) or cpu-seconds (computes)
    std::vector<TaskId> deps;
    std::string label;
    std::int64_t op = -1;
    std::int64_t slice = -1;
    std::size_t unmet_deps = 0;
    std::vector<TaskId> dependents;
  };

  TaskId add_task(Task t);

  topology::Cluster cluster_;
  topology::NetworkParams params_;
  std::vector<Task> tasks_;
  obs::Recorder* recorder_ = nullptr;
  bool ran_ = false;
};

}  // namespace rpr::simnet
