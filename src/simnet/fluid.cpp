#include "simnet/fluid.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

namespace rpr::simnet {

using topology::NodeId;
using topology::RackId;
using util::SimTime;

FluidNetwork::FluidNetwork(topology::Cluster cluster,
                           topology::NetworkParams params)
    : cluster_(cluster), params_(params) {
  if (!params_.inner.valid() || !params_.cross.valid()) {
    throw std::invalid_argument("FluidNetwork: bandwidths must be positive");
  }
}

TaskId FluidNetwork::add_task(Task t) {
  for (TaskId d : t.deps) {
    if (d >= tasks_.size()) {
      throw std::invalid_argument("FluidNetwork: dependency on unknown task");
    }
  }
  t.unmet_deps = t.deps.size();
  const TaskId id = tasks_.size();
  tasks_.push_back(std::move(t));
  for (TaskId d : tasks_.back().deps) tasks_[d].dependents.push_back(id);
  return id;
}

TaskId FluidNetwork::add_transfer(NodeId from, NodeId to, std::uint64_t bytes,
                                  std::vector<TaskId> deps,
                                  std::string label) {
  if (from >= cluster_.total_nodes() || to >= cluster_.total_nodes()) {
    throw std::invalid_argument("add_transfer: node out of range");
  }
  Task t;
  t.kind = TaskKind::kTransfer;
  t.from = from;
  t.to = to;
  t.remaining = static_cast<double>(bytes);
  t.deps = std::move(deps);
  t.label = std::move(label);
  return add_task(std::move(t));
}

TaskId FluidNetwork::add_compute(NodeId at, SimTime duration,
                                 std::vector<TaskId> deps,
                                 std::string label) {
  if (at >= cluster_.total_nodes()) {
    throw std::invalid_argument("add_compute: node out of range");
  }
  Task t;
  t.kind = TaskKind::kCompute;
  t.from = at;
  t.to = at;
  t.remaining = util::to_sec(duration);  // cpu-seconds
  t.deps = std::move(deps);
  t.label = std::move(label);
  return add_task(std::move(t));
}

void FluidNetwork::tag_task(TaskId id, std::int64_t op, std::int64_t slice) {
  if (id >= tasks_.size()) {
    throw std::invalid_argument("tag_task: unknown task");
  }
  tasks_[id].op = op;
  tasks_[id].slice = slice;
}

SimTime FluidNetwork::decode_duration(std::uint64_t bytes,
                                      bool with_matrix) const {
  if (!params_.charge_compute) return 0;
  const auto& speed =
      with_matrix ? params_.decode_with_matrix : params_.decode_xor;
  return speed.time_for(bytes);
}

namespace {

// Resource index space: node TX | node RX | rack TX | rack RX | node CPU.
struct ResourceMap {
  std::size_t nodes, racks;
  explicit ResourceMap(const topology::Cluster& c)
      : nodes(c.total_nodes()), racks(c.racks()) {}
  [[nodiscard]] std::size_t node_tx(NodeId n) const { return n; }
  [[nodiscard]] std::size_t node_rx(NodeId n) const { return nodes + n; }
  [[nodiscard]] std::size_t rack_tx(RackId r) const { return 2 * nodes + r; }
  [[nodiscard]] std::size_t rack_rx(RackId r) const {
    return 2 * nodes + racks + r;
  }
  [[nodiscard]] std::size_t cpu(NodeId n) const {
    return 2 * nodes + 2 * racks + n;
  }
  [[nodiscard]] std::size_t total() const { return 3 * nodes + 2 * racks; }
};

constexpr double kEps = 1e-9;

}  // namespace

RunResult FluidNetwork::run() {
  if (ran_) {
    throw std::logic_error("FluidNetwork::run may only be called once");
  }
  ran_ = true;

  const ResourceMap rmap(cluster_);
  std::vector<double> capacity(rmap.total());
  for (NodeId n = 0; n < cluster_.total_nodes(); ++n) {
    capacity[rmap.node_tx(n)] = params_.inner.as_bytes_per_sec();
    capacity[rmap.node_rx(n)] = params_.inner.as_bytes_per_sec();
    capacity[rmap.cpu(n)] = 1.0;  // one cpu-second per second
  }
  for (RackId r = 0; r < cluster_.racks(); ++r) {
    capacity[rmap.rack_tx(r)] = params_.cross.as_bytes_per_sec();
    capacity[rmap.rack_rx(r)] = params_.cross.as_bytes_per_sec();
  }

  // Resources each task occupies while active.
  auto resources_of = [&](const Task& t) {
    std::vector<std::size_t> out;
    if (t.kind == TaskKind::kCompute) {
      out.push_back(rmap.cpu(t.from));
      return out;
    }
    if (t.from == t.to) return out;  // local move: free
    out.push_back(rmap.node_tx(t.from));
    out.push_back(rmap.node_rx(t.to));
    const RackId rf = cluster_.rack_of(t.from);
    const RackId rt = cluster_.rack_of(t.to);
    if (rf != rt) {
      out.push_back(rmap.rack_tx(rf));
      out.push_back(rmap.rack_rx(rt));
    }
    return out;
  };

  RunResult result;
  result.tasks.resize(tasks_.size());
  result.rack_upload_bytes.assign(cluster_.racks(), 0);
  result.rack_download_bytes.assign(cluster_.racks(), 0);

  std::vector<TaskId> active;
  std::vector<TaskId> newly_ready;
  std::size_t completed = 0;
  double now = 0.0;

  // Rack-uplink bandwidth sampling: one sample per rate re-solve, emitted
  // only when a series' value changes (Chrome counter plots render steps).
  std::vector<double> last_tx(cluster_.racks(),
                              -std::numeric_limits<double>::infinity());
  std::vector<double> last_rx(cluster_.racks(),
                              -std::numeric_limits<double>::infinity());
  auto sample_uplinks = [&](const std::vector<double>& rate) {
    if (recorder_ == nullptr) return;
    std::vector<double> tx(cluster_.racks(), 0.0);
    std::vector<double> rx(cluster_.racks(), 0.0);
    for (TaskId id : active) {
      const Task& t = tasks_[id];
      if (t.kind != TaskKind::kTransfer || t.from == t.to) continue;
      const RackId rf = cluster_.rack_of(t.from);
      const RackId rt = cluster_.rack_of(t.to);
      if (rf == rt || !std::isfinite(rate[id])) continue;
      tx[rf] += rate[id];
      rx[rt] += rate[id];
    }
    const auto t_ns = static_cast<std::int64_t>(now * 1e9);
    for (RackId r = 0; r < cluster_.racks(); ++r) {
      const double tx_gbps = tx[r] * 8.0 / 1e9;
      const double rx_gbps = rx[r] * 8.0 / 1e9;
      if (tx_gbps != last_tx[r]) {
        recorder_->add_sample({"rack " + std::to_string(r) + " uplink tx Gb/s",
                               t_ns, tx_gbps});
        last_tx[r] = tx_gbps;
      }
      if (rx_gbps != last_rx[r]) {
        recorder_->add_sample({"rack " + std::to_string(r) + " uplink rx Gb/s",
                               t_ns, rx_gbps});
        last_rx[r] = rx_gbps;
      }
    }
  };

  auto record_start = [&](TaskId id) {
    auto& st = result.tasks[id];
    const Task& t = tasks_[id];
    st.kind = t.kind;
    st.label = t.label;
    st.node = t.to;
    st.from = t.from;
    st.op = t.op;
    st.slice = t.slice;
    st.deps = t.deps;
    st.ready = static_cast<SimTime>(now * 1e9);
    st.start = st.ready;
    if (t.kind == TaskKind::kTransfer) {
      st.bytes = static_cast<std::uint64_t>(std::llround(t.remaining));
      st.cross_rack = t.from != t.to &&
                      cluster_.rack_of(t.from) != cluster_.rack_of(t.to);
    }
  };

  std::vector<TaskId> finish_queue;
  auto finish_task = [&](TaskId id) {
    auto& st = result.tasks[id];
    st.finish = static_cast<SimTime>(now * 1e9);
    const Task& t = tasks_[id];
    if (t.kind == TaskKind::kTransfer && t.from != t.to) {
      const RackId rf = cluster_.rack_of(t.from);
      const RackId rt = cluster_.rack_of(t.to);
      if (rf != rt) {
        result.cross_rack_bytes += st.bytes;
        ++result.cross_rack_transfers;
        result.rack_upload_bytes[rf] += st.bytes;
        result.rack_download_bytes[rt] += st.bytes;
      } else {
        result.inner_rack_bytes += st.bytes;
        ++result.inner_rack_transfers;
      }
    }
    ++completed;
    for (TaskId dep : tasks_[id].dependents) {
      if (--tasks_[dep].unmet_deps == 0) newly_ready.push_back(dep);
    }
  };

  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].unmet_deps == 0) newly_ready.push_back(id);
  }

  while (true) {
    // Absorb ready tasks; zero-cost ones complete immediately (may cascade).
    while (!newly_ready.empty()) {
      std::sort(newly_ready.begin(), newly_ready.end());
      std::vector<TaskId> batch;
      batch.swap(newly_ready);
      for (TaskId id : batch) {
        record_start(id);
        const Task& t = tasks_[id];
        const bool instant =
            t.remaining <= kEps ||
            (t.kind == TaskKind::kTransfer && t.from == t.to);
        if (instant) {
          finish_task(id);
        } else {
          active.push_back(id);
        }
      }
    }
    if (active.empty()) break;

    // Max-min fair rates by water-filling.
    std::vector<double> rate(tasks_.size(), 0.0);
    std::vector<char> fixed(tasks_.size(), 0);
    std::vector<double> cap = capacity;
    // Member lists per resource for the active set.
    std::map<std::size_t, std::vector<TaskId>> members;
    std::vector<TaskId> unconstrained;  // e.g. nothing uses a resource
    for (TaskId id : active) {
      const auto res = resources_of(tasks_[id]);
      if (res.empty()) {
        unconstrained.push_back(id);
        continue;
      }
      for (const auto r : res) members[r].push_back(id);
    }
    for (TaskId id : unconstrained) {
      rate[id] = std::numeric_limits<double>::infinity();
      fixed[id] = 1;
    }
    for (;;) {
      // Find the tightest resource among those with unfixed members.
      double best_share = std::numeric_limits<double>::infinity();
      std::size_t best_res = SIZE_MAX;
      for (const auto& [r, flows] : members) {
        std::size_t unfixed = 0;
        for (TaskId id : flows) {
          if (!fixed[id]) ++unfixed;
        }
        if (unfixed == 0) continue;
        const double share = cap[r] / static_cast<double>(unfixed);
        if (share < best_share) {
          best_share = share;
          best_res = r;
        }
      }
      if (best_res == SIZE_MAX) break;
      for (TaskId id : members[best_res]) {
        if (fixed[id]) continue;
        fixed[id] = 1;
        rate[id] = best_share;
        for (const auto r : resources_of(tasks_[id])) {
          cap[r] = std::max(0.0, cap[r] - best_share);
        }
      }
    }

    sample_uplinks(rate);

    // Advance to the earliest completion.
    double dt = std::numeric_limits<double>::infinity();
    for (TaskId id : active) {
      if (rate[id] <= 0) continue;  // fully starved: cannot happen with
                                    // positive capacities, defensive
      dt = std::min(dt, tasks_[id].remaining / rate[id]);
    }
    if (!std::isfinite(dt)) {
      // All remaining active tasks are unconstrained/instant.
      dt = 0.0;
    }
    now += dt;
    std::vector<TaskId> still_active;
    for (TaskId id : active) {
      Task& t = tasks_[id];
      if (std::isinf(rate[id])) {
        t.remaining = 0.0;
      } else {
        t.remaining -= rate[id] * dt;
      }
      if (t.remaining <= kEps * std::max(1.0, rate[id])) {
        finish_task(id);
      } else {
        still_active.push_back(id);
      }
    }
    active.swap(still_active);
  }

  if (completed != tasks_.size()) {
    throw std::logic_error(
        "FluidNetwork::run: task graph has a cycle or unreachable tasks");
  }
  // Close every sampled series at the makespan (active is empty here).
  sample_uplinks(std::vector<double>(tasks_.size(), 0.0));
  result.makespan = static_cast<SimTime>(now * 1e9);
  return result;
}

}  // namespace rpr::simnet
