#include "simnet/trace_export.h"

#include <fstream>
#include <sstream>

namespace rpr::simnet {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_chrome_trace(const RunResult& result,
                            const topology::Cluster& cluster) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;

  // Thread-name metadata: one lane per node, grouped by rack via sort index.
  for (topology::NodeId n = 0; n < cluster.total_nodes(); ++n) {
    if (!first) out << ",";
    first = false;
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << n
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"rack "
        << cluster.rack_of(n) << " / node " << n << "\"}}";
  }

  for (std::size_t id = 0; id < result.tasks.size(); ++id) {
    const TaskStats& t = result.tasks[id];
    if (t.finish == t.start) continue;  // zero-length: invisible anyway
    // Transfers render on the *receiving* node's lane; computes on theirs.
    std::string name;
    if (t.kind == TaskKind::kTransfer) {
      name = t.cross_rack ? "cross-rack transfer" : "inner-rack transfer";
    } else {
      name = "compute";
    }
    if (!t.label.empty()) name += " [" + escape(t.label) + "]";
    out << ",{\"ph\":\"X\",\"pid\":1,\"tid\":" << t.node
        << ",\"ts\":" << t.start / 1000 << ",\"dur\":"
        << (t.finish - t.start) / 1000 << ",\"name\":\"" << name
        << "\",\"args\":{\"task\":" << id << ",\"bytes\":" << t.bytes
        << "}}";
  }
  out << "]}";
  return out.str();
}

void write_chrome_trace(const RunResult& result,
                        const topology::Cluster& cluster,
                        const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("write_chrome_trace: cannot open " + path);
  f << to_chrome_trace(result, cluster);
  if (!f) throw std::runtime_error("write_chrome_trace: write failed");
}

}  // namespace rpr::simnet
