#include "simnet/trace_export.h"

#include "obs/sinks.h"
#include "simnet/instrument.h"

namespace rpr::simnet {

std::string to_chrome_trace(const RunResult& result,
                            const topology::Cluster& cluster) {
  obs::Recorder rec;
  record_spans(result, cluster, rec);
  return obs::to_chrome_trace(rec);
}

void write_chrome_trace(const RunResult& result,
                        const topology::Cluster& cluster,
                        const std::string& path) {
  obs::Recorder rec;
  record_spans(result, cluster, rec);
  obs::write_chrome_trace(rec, path);
}

}  // namespace rpr::simnet
