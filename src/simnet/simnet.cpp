#include "simnet/simnet.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "util/contracts.h"

namespace rpr::simnet {

using topology::NodeId;
using topology::RackId;
using util::SimTime;

SimNetwork::SimNetwork(topology::Cluster cluster,
                       topology::NetworkParams params)
    : cluster_(cluster), params_(params) {
  if (!params_.inner.valid() || !params_.cross.valid()) {
    throw std::invalid_argument("SimNetwork: bandwidths must be positive");
  }
}

TaskId SimNetwork::add_task(Task t) {
  for (TaskId d : t.deps) {
    if (d >= tasks_.size()) {
      throw std::invalid_argument("SimNetwork: dependency on unknown task");
    }
  }
  t.unmet_deps = t.deps.size();
  const TaskId id = tasks_.size();
  tasks_.push_back(std::move(t));
  for (TaskId d : tasks_.back().deps) {
    tasks_[d].dependents.push_back(id);
  }
  return id;
}

TaskId SimNetwork::add_transfer(NodeId from, NodeId to, std::uint64_t bytes,
                                std::vector<TaskId> deps, std::string label) {
  if (from >= cluster_.total_nodes() || to >= cluster_.total_nodes()) {
    throw std::invalid_argument("add_transfer: node out of range");
  }
  Task t;
  t.kind = TaskKind::kTransfer;
  t.from = from;
  t.to = to;
  t.bytes = bytes;
  t.deps = std::move(deps);
  t.label = std::move(label);
  return add_task(std::move(t));
}

TaskId SimNetwork::add_compute(NodeId at, SimTime duration,
                               std::vector<TaskId> deps, std::string label) {
  if (at >= cluster_.total_nodes()) {
    throw std::invalid_argument("add_compute: node out of range");
  }
  Task t;
  t.kind = TaskKind::kCompute;
  t.from = at;
  t.to = at;
  t.duration = duration;
  t.deps = std::move(deps);
  t.label = std::move(label);
  return add_task(std::move(t));
}

void SimNetwork::tag_task(TaskId id, std::int64_t op, std::int64_t slice) {
  if (id >= tasks_.size()) {
    throw std::invalid_argument("tag_task: unknown task");
  }
  tasks_[id].op = op;
  tasks_[id].slice = slice;
}

void SimNetwork::slow_node(NodeId node, double factor) {
  if (node >= cluster_.total_nodes()) {
    throw std::invalid_argument("slow_node: node out of range");
  }
  if (factor < 1.0) {
    throw std::invalid_argument("slow_node: factor must be >= 1");
  }
  if (tx_slowdown_.empty()) {
    tx_slowdown_.assign(cluster_.total_nodes(), 1.0);
  }
  tx_slowdown_[node] = factor;
}

void SimNetwork::set_class(TaskId id, TrafficClass cls) {
  if (id >= tasks_.size()) {
    throw std::invalid_argument("set_class: unknown task");
  }
  tasks_[id].cls = cls;
}

void SimNetwork::set_priority(TaskId id, int priority) {
  if (id >= tasks_.size()) {
    throw std::invalid_argument("set_priority: unknown task");
  }
  tasks_[id].priority = priority;
}

void SimNetwork::set_earliest_start(TaskId id, SimTime at) {
  if (id >= tasks_.size()) {
    throw std::invalid_argument("set_earliest_start: unknown task");
  }
  tasks_[id].earliest_start = at;
}

void SimNetwork::set_arbiter(ArbiterConfig cfg) {
  if (!(cfg.repair_share > 0.0) || cfg.repair_share > 1.0) {
    throw std::invalid_argument("set_arbiter: repair_share must be in (0,1]");
  }
  if (cfg.burst_s < 0.0) {
    throw std::invalid_argument("set_arbiter: burst_s must be >= 0");
  }
  arbiter_ = cfg;
  arbiter_enabled_ = cfg.repair_share < 1.0;
}

void SimNetwork::set_finish_hook(FinishHook hook) {
  finish_hook_ = std::move(hook);
}

void SimNetwork::slow_compute(NodeId node, double factor) {
  if (node >= cluster_.total_nodes()) {
    throw std::invalid_argument("slow_compute: node out of range");
  }
  if (factor < 1.0) {
    throw std::invalid_argument("slow_compute: factor must be >= 1");
  }
  if (compute_slowdown_.empty()) {
    compute_slowdown_.assign(cluster_.total_nodes(), 1.0);
  }
  compute_slowdown_[node] = factor;
}

SimTime SimNetwork::decode_duration(std::uint64_t bytes,
                                    bool with_matrix) const {
  if (!params_.charge_compute) return 0;
  const auto& speed =
      with_matrix ? params_.decode_with_matrix : params_.decode_xor;
  return speed.time_for(bytes);
}

RunResult SimNetwork::run() {
  if (ran_) throw std::logic_error("SimNetwork::run may only be called once");
  ran_ = true;
  running_phase_ = true;

  // Port state: the time at which each port becomes free.
  std::vector<SimTime> node_tx(cluster_.total_nodes(), 0);
  std::vector<SimTime> node_rx(cluster_.total_nodes(), 0);
  std::vector<SimTime> node_cpu(cluster_.total_nodes(), 0);
  std::vector<SimTime> rack_tx(cluster_.racks(), 0);
  std::vector<SimTime> rack_rx(cluster_.racks(), 0);

  // Deficit token buckets for the repair class, one per port (node TX/RX
  // and rack cross TX/RX). `credit` is in port-seconds; see ArbiterConfig.
  struct Bucket {
    double credit = 0.0;
    SimTime last = 0;
  };
  const double burst_ns =
      arbiter_.burst_s * static_cast<double>(util::kNsPerSec);
  std::vector<Bucket> tok_node_tx, tok_node_rx, tok_rack_tx, tok_rack_rx;
  if (arbiter_enabled_) {
    tok_node_tx.assign(cluster_.total_nodes(), Bucket{burst_ns, 0});
    tok_node_rx.assign(cluster_.total_nodes(), Bucket{burst_ns, 0});
    tok_rack_tx.assign(cluster_.racks(), Bucket{burst_ns, 0});
    tok_rack_rx.assign(cluster_.racks(), Bucket{burst_ns, 0});
  }
  const double rate = arbiter_.repair_share;  // credit ns per elapsed ns
  auto refill = [&](Bucket& b, SimTime now) {
    if (b.last < now) {
      b.credit = std::min(
          burst_ns, b.credit + static_cast<double>(now - b.last) * rate);
      b.last = now;
    }
  };

  RunResult result;
  result.tasks.resize(tasks_.size());
  result.rack_upload_bytes.assign(cluster_.racks(), 0);
  result.rack_download_bytes.assign(cluster_.racks(), 0);
  std::vector<char> done(tasks_.size(), 0);
  // Static identity is copied up front (timing fields are filled as tasks
  // are scheduled below). Tasks added mid-run by the finish hook get the
  // same treatment in integrate_new below.
  auto copy_identity = [&](TaskId id) {
    result.tasks[id].op = tasks_[id].op;
    result.tasks[id].slice = tasks_[id].slice;
    result.tasks[id].deps = tasks_[id].deps;
    result.tasks[id].cls = tasks_[id].cls;
    result.tasks[id].priority = tasks_[id].priority;
  };
  for (TaskId id = 0; id < tasks_.size(); ++id) copy_identity(id);

  struct Pending {
    SimTime ready;
    int priority;
    TaskId id;
    /// Start order: earliest ready first, then highest priority, then
    /// submission order. With default priorities this is the original
    /// FIFO-by-(ready, id) greedy order.
    bool operator<(const Pending& o) const {
      if (ready != o.ready) return ready < o.ready;
      if (priority != o.priority) return priority > o.priority;
      return id < o.id;
    }
  };
  std::vector<Pending> pending;  // min-heap by the order above

  struct Completion {
    SimTime finish;
    TaskId id;
    bool operator>(const Completion& o) const {
      return finish != o.finish ? finish > o.finish : id > o.id;
    }
  };
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      running;

  auto heap_less = [](const Pending& a, const Pending& b) { return b < a; };
  auto enqueue_ready = [&](TaskId id, SimTime when) {
    RPR_INVARIANT(tasks_[id].unmet_deps == 0,
                  "a task becomes ready only once all dependencies finished");
    result.tasks[id].ready = when;
    pending.push_back(Pending{when, tasks_[id].priority, id});
    std::push_heap(pending.begin(), pending.end(), heap_less);
  };

  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].unmet_deps == 0) {
      enqueue_ready(id, tasks_[id].earliest_start);
    }
  }

  // pending is a min-heap on (ready, -priority, id); tasks whose ports are
  // busy are re-examined after every completion event. We pop into a
  // scratch list, attempt starts in order, and push back whatever could
  // not start. Tasks throttled by the arbiter are re-enqueued with their
  // token-availability time as the new ready time, so the event loop can
  // sleep until then instead of spinning.
  std::vector<Pending> blocked;

  auto try_start_all = [&](SimTime now) {
    blocked.clear();
    while (!pending.empty() && pending.front().ready <= now) {
      std::pop_heap(pending.begin(), pending.end(), heap_less);
      const Pending p = pending.back();
      pending.pop_back();

      Task& t = tasks_[p.id];
      TaskStats& st = result.tasks[p.id];
      st.kind = t.kind;
      st.label = t.label;
      st.bytes = t.bytes;
      st.node = t.to;
      st.from = t.from;

      if (t.kind == TaskKind::kCompute) {
        if (node_cpu[t.from] > now) {
          blocked.push_back(p);
          continue;
        }
        st.start = now;
        SimTime cduration = t.duration;
        if (!compute_slowdown_.empty() && compute_slowdown_[t.from] > 1.0) {
          cduration = static_cast<SimTime>(static_cast<double>(cduration) *
                                           compute_slowdown_[t.from]);
        }
        st.finish = now + cduration;
        node_cpu[t.from] = st.finish;
        running.push(Completion{st.finish, p.id});
        continue;
      }

      // Transfer.
      if (t.from == t.to) {  // local read: free and portless
        st.start = now;
        st.finish = now;
        running.push(Completion{now, p.id});
        continue;
      }
      const RackId rf = cluster_.rack_of(t.from);
      const RackId rt = cluster_.rack_of(t.to);
      const bool cross = rf != rt;
      st.cross_rack = cross;

      const bool ports_free =
          node_tx[t.from] <= now && node_rx[t.to] <= now &&
          (!cross || (rack_tx[rf] <= now && rack_rx[rt] <= now));
      if (!ports_free) {
        blocked.push_back(p);
        continue;
      }
      const util::Bandwidth bw = cross ? params_.cross : params_.inner;
      SimTime duration = bw.time_for(t.bytes);
      if (!tx_slowdown_.empty() && tx_slowdown_[t.from] > 1.0) {
        duration = static_cast<SimTime>(
            static_cast<double>(duration) * tx_slowdown_[t.from]);
      }

      if (arbiter_enabled_ && t.cls == TrafficClass::kRepair) {
        Bucket* buckets[4] = {&tok_node_tx[t.from], &tok_node_rx[t.to],
                              cross ? &tok_rack_tx[rf] : nullptr,
                              cross ? &tok_rack_rx[rt] : nullptr};
        double worst = 0.0;  // most negative credit across involved ports
        for (Bucket* b : buckets) {
          if (b == nullptr) continue;
          refill(*b, now);
          worst = std::min(worst, b->credit);
        }
        if (worst < 0.0) {
          const auto wait = static_cast<SimTime>(std::ceil(-worst / rate));
          if (wait > 0) {
            pending.push_back(Pending{now + wait, p.priority, p.id});
            std::push_heap(pending.begin(), pending.end(), heap_less);
            continue;
          }
        }
        for (Bucket* b : buckets) {
          if (b != nullptr) b->credit -= static_cast<double>(duration);
        }
      }

      st.start = now;
      st.finish = now + duration;
      node_tx[t.from] = st.finish;
      node_rx[t.to] = st.finish;
      if (cross) {
        rack_tx[rf] = st.finish;
        rack_rx[rt] = st.finish;
        result.cross_rack_bytes += t.bytes;
        ++result.cross_rack_transfers;
        result.rack_upload_bytes[rf] += t.bytes;
        result.rack_download_bytes[rt] += t.bytes;
      } else {
        result.inner_rack_bytes += t.bytes;
        ++result.inner_rack_transfers;
      }
      if (t.cls == TrafficClass::kRepair) {
        result.repair_bytes += t.bytes;
      } else {
        result.foreground_bytes += t.bytes;
      }
      running.push(Completion{st.finish, p.id});
    }
    for (const Pending& p : blocked) {
      pending.push_back(p);
      std::push_heap(pending.begin(), pending.end(), heap_less);
    }
  };

  // Integrates tasks the finish hook just added: count only unfinished
  // dependencies and enqueue the immediately-ready ones at `now` (or their
  // earliest_start if later).
  auto integrate_new = [&](std::size_t first_new, SimTime now) {
    if (tasks_.size() == first_new) return;
    result.tasks.resize(tasks_.size());
    done.resize(tasks_.size(), 0);
    for (TaskId id = first_new; id < tasks_.size(); ++id) {
      copy_identity(id);
      std::size_t unmet = 0;
      for (TaskId d : tasks_[id].deps) {
        if (!done[d]) ++unmet;
      }
      tasks_[id].unmet_deps = unmet;
      if (unmet == 0) {
        enqueue_ready(id, std::max(now, tasks_[id].earliest_start));
      }
    }
  };

  SimTime now = 0;
  try_start_all(now);
  std::size_t completed = 0;
  std::vector<TaskId> batch;
  while (!running.empty() || !pending.empty()) {
    // Next event: the earliest completion, or the earliest strictly-future
    // pending ready time (arrivals and arbiter-throttled tasks). Pending
    // tasks whose ready time has passed only unblock via completions.
    SimTime next = std::numeric_limits<SimTime>::max();
    if (!running.empty()) next = running.top().finish;
    if (!pending.empty() && pending.front().ready > now) {
      next = std::min(next, pending.front().ready);
    }
    if (next == std::numeric_limits<SimTime>::max()) break;
    RPR_INVARIANT(next >= now, "sim time must be monotonic");
    now = next;
    // Drain every completion at this instant before attempting new starts,
    // so simultaneous finishes release all their ports atomically.
    batch.clear();
    while (!running.empty() && running.top().finish == now) {
      const TaskId done_id = running.top().id;
      running.pop();
      ++completed;
      done[done_id] = 1;
      batch.push_back(done_id);
      for (TaskId dep : tasks_[done_id].dependents) {
        if (--tasks_[dep].unmet_deps == 0) {
          enqueue_ready(dep, std::max(now, tasks_[dep].earliest_start));
        }
      }
    }
    if (finish_hook_ && !batch.empty()) {
      const std::size_t first_new = tasks_.size();
      finish_hook_(now, std::span<const TaskId>(batch));
      integrate_new(first_new, now);
    }
    try_start_all(now);
  }
  running_phase_ = false;

  if (completed != tasks_.size()) {
    throw std::logic_error(
        "SimNetwork::run: task graph has a cycle or unreachable tasks");
  }
  result.makespan = now;
#if RPR_CONTRACTS_ENABLED
  for (const TaskStats& st : result.tasks) {
    RPR_ENSURE(st.finish <= result.makespan,
               "no task may finish after the makespan");
    RPR_ENSURE(st.start >= st.ready,
               "no task may start before its dependencies finished");
  }
#endif
  return result;
}

}  // namespace rpr::simnet
