#include "simnet/simnet.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/contracts.h"

namespace rpr::simnet {

using topology::NodeId;
using topology::RackId;
using util::SimTime;

SimNetwork::SimNetwork(topology::Cluster cluster,
                       topology::NetworkParams params)
    : cluster_(cluster), params_(params) {
  if (!params_.inner.valid() || !params_.cross.valid()) {
    throw std::invalid_argument("SimNetwork: bandwidths must be positive");
  }
}

TaskId SimNetwork::add_task(Task t) {
  for (TaskId d : t.deps) {
    if (d >= tasks_.size()) {
      throw std::invalid_argument("SimNetwork: dependency on unknown task");
    }
  }
  t.unmet_deps = t.deps.size();
  const TaskId id = tasks_.size();
  tasks_.push_back(std::move(t));
  for (TaskId d : tasks_.back().deps) {
    tasks_[d].dependents.push_back(id);
  }
  return id;
}

TaskId SimNetwork::add_transfer(NodeId from, NodeId to, std::uint64_t bytes,
                                std::vector<TaskId> deps, std::string label) {
  if (from >= cluster_.total_nodes() || to >= cluster_.total_nodes()) {
    throw std::invalid_argument("add_transfer: node out of range");
  }
  Task t;
  t.kind = TaskKind::kTransfer;
  t.from = from;
  t.to = to;
  t.bytes = bytes;
  t.deps = std::move(deps);
  t.label = std::move(label);
  return add_task(std::move(t));
}

TaskId SimNetwork::add_compute(NodeId at, SimTime duration,
                               std::vector<TaskId> deps, std::string label) {
  if (at >= cluster_.total_nodes()) {
    throw std::invalid_argument("add_compute: node out of range");
  }
  Task t;
  t.kind = TaskKind::kCompute;
  t.from = at;
  t.to = at;
  t.duration = duration;
  t.deps = std::move(deps);
  t.label = std::move(label);
  return add_task(std::move(t));
}

void SimNetwork::tag_task(TaskId id, std::int64_t op, std::int64_t slice) {
  if (id >= tasks_.size()) {
    throw std::invalid_argument("tag_task: unknown task");
  }
  tasks_[id].op = op;
  tasks_[id].slice = slice;
}

void SimNetwork::slow_node(NodeId node, double factor) {
  if (node >= cluster_.total_nodes()) {
    throw std::invalid_argument("slow_node: node out of range");
  }
  if (factor < 1.0) {
    throw std::invalid_argument("slow_node: factor must be >= 1");
  }
  if (tx_slowdown_.empty()) {
    tx_slowdown_.assign(cluster_.total_nodes(), 1.0);
  }
  tx_slowdown_[node] = factor;
}

void SimNetwork::slow_compute(NodeId node, double factor) {
  if (node >= cluster_.total_nodes()) {
    throw std::invalid_argument("slow_compute: node out of range");
  }
  if (factor < 1.0) {
    throw std::invalid_argument("slow_compute: factor must be >= 1");
  }
  if (compute_slowdown_.empty()) {
    compute_slowdown_.assign(cluster_.total_nodes(), 1.0);
  }
  compute_slowdown_[node] = factor;
}

SimTime SimNetwork::decode_duration(std::uint64_t bytes,
                                    bool with_matrix) const {
  if (!params_.charge_compute) return 0;
  const auto& speed =
      with_matrix ? params_.decode_with_matrix : params_.decode_xor;
  return speed.time_for(bytes);
}

RunResult SimNetwork::run() {
  if (ran_) throw std::logic_error("SimNetwork::run may only be called once");
  ran_ = true;

  // Port state: the time at which each port becomes free.
  std::vector<SimTime> node_tx(cluster_.total_nodes(), 0);
  std::vector<SimTime> node_rx(cluster_.total_nodes(), 0);
  std::vector<SimTime> node_cpu(cluster_.total_nodes(), 0);
  std::vector<SimTime> rack_tx(cluster_.racks(), 0);
  std::vector<SimTime> rack_rx(cluster_.racks(), 0);

  RunResult result;
  result.tasks.resize(tasks_.size());
  result.rack_upload_bytes.assign(cluster_.racks(), 0);
  result.rack_download_bytes.assign(cluster_.racks(), 0);
  // Static identity is copied up front (timing fields are filled as tasks
  // are scheduled below).
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    result.tasks[id].op = tasks_[id].op;
    result.tasks[id].slice = tasks_[id].slice;
    result.tasks[id].deps = tasks_[id].deps;
  }

  struct Pending {
    SimTime ready;
    TaskId id;
    bool operator<(const Pending& o) const {
      return ready != o.ready ? ready < o.ready : id < o.id;
    }
  };
  std::vector<Pending> pending;  // kept sorted; FIFO by (ready, id)

  struct Completion {
    SimTime finish;
    TaskId id;
    bool operator>(const Completion& o) const {
      return finish != o.finish ? finish > o.finish : id > o.id;
    }
  };
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      running;

  auto enqueue_ready = [&](TaskId id, SimTime when) {
    RPR_INVARIANT(tasks_[id].unmet_deps == 0,
                  "a task becomes ready only once all dependencies finished");
    result.tasks[id].ready = when;
    pending.push_back(Pending{when, id});
    std::push_heap(pending.begin(), pending.end(),
                   [](const Pending& a, const Pending& b) { return b < a; });
  };

  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].unmet_deps == 0) enqueue_ready(id, 0);
  }

  // pending is a min-heap on (ready, id); tasks whose ports are busy are
  // re-examined after every completion event. We pop into a scratch list,
  // attempt starts in FIFO order, and push back whatever could not start.
  std::vector<Pending> blocked;

  auto try_start_all = [&](SimTime now) {
    blocked.clear();
    auto heap_less = [](const Pending& a, const Pending& b) { return b < a; };
    while (!pending.empty()) {
      std::pop_heap(pending.begin(), pending.end(), heap_less);
      const Pending p = pending.back();
      pending.pop_back();

      Task& t = tasks_[p.id];
      TaskStats& st = result.tasks[p.id];
      st.kind = t.kind;
      st.label = t.label;
      st.bytes = t.bytes;
      st.node = t.to;
      st.from = t.from;

      if (t.kind == TaskKind::kCompute) {
        if (node_cpu[t.from] > now) {
          blocked.push_back(p);
          continue;
        }
        st.start = now;
        SimTime cduration = t.duration;
        if (!compute_slowdown_.empty() && compute_slowdown_[t.from] > 1.0) {
          cduration = static_cast<SimTime>(static_cast<double>(cduration) *
                                           compute_slowdown_[t.from]);
        }
        st.finish = now + cduration;
        node_cpu[t.from] = st.finish;
        running.push(Completion{st.finish, p.id});
        continue;
      }

      // Transfer.
      if (t.from == t.to) {  // local read: free and portless
        st.start = now;
        st.finish = now;
        running.push(Completion{now, p.id});
        continue;
      }
      const RackId rf = cluster_.rack_of(t.from);
      const RackId rt = cluster_.rack_of(t.to);
      const bool cross = rf != rt;
      st.cross_rack = cross;

      const bool ports_free =
          node_tx[t.from] <= now && node_rx[t.to] <= now &&
          (!cross || (rack_tx[rf] <= now && rack_rx[rt] <= now));
      if (!ports_free) {
        blocked.push_back(p);
        continue;
      }
      const util::Bandwidth bw = cross ? params_.cross : params_.inner;
      st.start = now;
      SimTime duration = bw.time_for(t.bytes);
      if (!tx_slowdown_.empty() && tx_slowdown_[t.from] > 1.0) {
        duration = static_cast<SimTime>(
            static_cast<double>(duration) * tx_slowdown_[t.from]);
      }
      st.finish = now + duration;
      node_tx[t.from] = st.finish;
      node_rx[t.to] = st.finish;
      if (cross) {
        rack_tx[rf] = st.finish;
        rack_rx[rt] = st.finish;
        result.cross_rack_bytes += t.bytes;
        ++result.cross_rack_transfers;
        result.rack_upload_bytes[rf] += t.bytes;
        result.rack_download_bytes[rt] += t.bytes;
      } else {
        result.inner_rack_bytes += t.bytes;
        ++result.inner_rack_transfers;
      }
      running.push(Completion{st.finish, p.id});
    }
    for (const Pending& p : blocked) {
      pending.push_back(p);
      std::push_heap(pending.begin(), pending.end(), heap_less);
    }
  };

  SimTime now = 0;
  try_start_all(now);
  std::size_t completed = 0;
  while (!running.empty()) {
    now = running.top().finish;
    // Drain every completion at this instant before attempting new starts,
    // so simultaneous finishes release all their ports atomically.
    while (!running.empty() && running.top().finish == now) {
      const TaskId done = running.top().id;
      running.pop();
      ++completed;
      for (TaskId dep : tasks_[done].dependents) {
        if (--tasks_[dep].unmet_deps == 0) enqueue_ready(dep, now);
      }
    }
    try_start_all(now);
  }

  if (completed != tasks_.size()) {
    throw std::logic_error(
        "SimNetwork::run: task graph has a cycle or unreachable tasks");
  }
  result.makespan = now;
#if RPR_CONTRACTS_ENABLED
  for (const TaskStats& st : result.tasks) {
    RPR_ENSURE(st.finish <= result.makespan,
               "no task may finish after the makespan");
    RPR_ENSURE(st.start >= st.ready,
               "no task may start before its dependencies finished");
  }
#endif
  return result;
}

}  // namespace rpr::simnet
