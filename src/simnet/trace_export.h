// Chrome-trace export of simulated schedules.
//
// Writes a RunResult as Chrome's Trace Event JSON (load via
// chrome://tracing or https://ui.perfetto.dev) so a repair schedule can be
// inspected visually — one row per node, one slice per transfer/compute.
// This is how the Fig. 3-5 timeline diagrams of the paper can be
// regenerated from any plan.
#pragma once

#include <string>

#include "simnet/simnet.h"

namespace rpr::simnet {

/// Renders the trace JSON as a string. `cluster` labels rows with racks.
[[nodiscard]] std::string to_chrome_trace(const RunResult& result,
                                          const topology::Cluster& cluster);

/// Writes the JSON to `path` (overwrites). Throws on I/O failure.
void write_chrome_trace(const RunResult& result,
                        const topology::Cluster& cluster,
                        const std::string& path);

}  // namespace rpr::simnet
