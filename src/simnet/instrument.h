// Bridges simulator results into the rpr::obs telemetry layer.
//
// Everything here is derived *after* a run from the per-task stats the
// simulators already collect (TaskStats carries ready/start/finish, bytes
// and the cross-rack flag), so the simulators' hot loops stay untouched and
// a disabled probe costs nothing.
//
// Phase attribution keys off task labels, mirroring the paper's three-stage
// decomposition of a repair (inner aggregation -> cross-rack pipeline ->
// final decode): labels carry an "inner:" / "cross:" prefix placed by the
// planners' reduction helpers, "finalize"/"decode" marks the final combine,
// and unlabeled transfers fall back to their cross-rack flag.
#pragma once

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "simnet/simnet.h"

namespace rpr::simnet {

enum class Phase { kRead, kInner, kCross, kDecode, kOther };

[[nodiscard]] Phase phase_of(const TaskStats& t);
/// Label-only variant shared with the wall-clock executors (testbed, TCP
/// runtime), which classify plan ops rather than simulator tasks.
[[nodiscard]] Phase phase_of_label(const std::string& label, bool is_transfer,
                                   bool cross_rack);
[[nodiscard]] const char* phase_name(Phase p);

struct PhaseStats {
  std::size_t tasks = 0;
  std::uint64_t bytes = 0;
  /// Sum of task durations (resource-seconds, may exceed wall time).
  util::SimTime busy = 0;
  /// Earliest start / latest finish over the phase's tasks.
  util::SimTime first_start = 0;
  util::SimTime last_finish = 0;

  /// Wall-clock extent of the phase (last finish - first start).
  [[nodiscard]] util::SimTime span() const {
    return tasks == 0 ? 0 : last_finish - first_start;
  }
};

/// Per-phase decomposition of a run: where the makespan went.
struct PhaseBreakdown {
  PhaseStats read, inner, cross, decode, other;

  [[nodiscard]] const PhaseStats& of(Phase p) const;
  [[nodiscard]] PhaseStats& of(Phase p);
};

[[nodiscard]] PhaseBreakdown phase_breakdown(const RunResult& result);

/// Converts every task into a recorder span: transfers land on the
/// receiving node's track, computes on their node's, categories carry the
/// phase. Also names one track per cluster node ("rack r / node n").
void record_spans(const RunResult& result, const topology::Cluster& cluster,
                  obs::Recorder& rec);

/// Snapshots a run into the registry under the "sim." prefix: traffic
/// counters, per-rack upload/download, per-node and per-rack port busy
/// gauges, queue-wait and duration histograms, per-phase gauges.
void record_metrics(const RunResult& result, const topology::Cluster& cluster,
                    obs::MetricsRegistry& reg);

/// record_spans + record_metrics for whichever halves of `probe` are set.
void record_run(const RunResult& result, const topology::Cluster& cluster,
                const obs::Probe& probe);

}  // namespace rpr::simnet
