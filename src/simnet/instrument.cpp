#include "simnet/instrument.h"

#include <algorithm>
#include <string>
#include <vector>

namespace rpr::simnet {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string span_name(const TaskStats& t) {
  std::string name;
  if (t.kind == TaskKind::kTransfer) {
    name = t.cross_rack ? "cross-rack transfer" : "inner-rack transfer";
  } else {
    name = "compute";
  }
  if (!t.label.empty()) name += " [" + t.label + "]";
  return name;
}

}  // namespace

Phase phase_of_label(const std::string& label, bool is_transfer,
                     bool cross_rack) {
  if (starts_with(label, "inner:")) return Phase::kInner;
  if (starts_with(label, "cross:")) return Phase::kCross;
  if (starts_with(label, "decode") || starts_with(label, "finalize")) {
    return Phase::kDecode;
  }
  if (starts_with(label, "read")) return Phase::kRead;
  if (is_transfer) return cross_rack ? Phase::kCross : Phase::kInner;
  return Phase::kOther;
}

Phase phase_of(const TaskStats& t) {
  return phase_of_label(t.label, t.kind == TaskKind::kTransfer, t.cross_rack);
}

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kRead: return "read";
    case Phase::kInner: return "inner";
    case Phase::kCross: return "cross";
    case Phase::kDecode: return "decode";
    case Phase::kOther: return "other";
  }
  return "other";
}

const PhaseStats& PhaseBreakdown::of(Phase p) const {
  switch (p) {
    case Phase::kRead: return read;
    case Phase::kInner: return inner;
    case Phase::kCross: return cross;
    case Phase::kDecode: return decode;
    case Phase::kOther: return other;
  }
  return other;
}

PhaseStats& PhaseBreakdown::of(Phase p) {
  switch (p) {
    case Phase::kRead: return read;
    case Phase::kInner: return inner;
    case Phase::kCross: return cross;
    case Phase::kDecode: return decode;
    case Phase::kOther: return other;
  }
  return other;
}

PhaseBreakdown phase_breakdown(const RunResult& result) {
  PhaseBreakdown out;
  for (const TaskStats& t : result.tasks) {
    PhaseStats& s = out.of(phase_of(t));
    if (s.tasks == 0 || t.start < s.first_start) s.first_start = t.start;
    s.last_finish = std::max(s.last_finish, t.finish);
    s.busy += t.finish - t.start;
    s.bytes += t.kind == TaskKind::kTransfer ? t.bytes : 0;
    ++s.tasks;
  }
  return out;
}

void record_spans(const RunResult& result, const topology::Cluster& cluster,
                  obs::Recorder& rec) {
  for (topology::NodeId n = 0; n < cluster.total_nodes(); ++n) {
    rec.set_track_name(n, "rack " + std::to_string(cluster.rack_of(n)) +
                              " / node " + std::to_string(n));
  }
  // One id per task, from a contiguous block so ids stay unique when
  // several runs (e.g. resilient re-plans) share the recorder.
  const obs::SpanId base = rec.reserve_span_ids(result.tasks.size());
  for (std::size_t id = 0; id < result.tasks.size(); ++id) {
    const TaskStats& t = result.tasks[id];
    obs::Span s;
    s.name = span_name(t);
    s.category = phase_name(phase_of(t));
    s.track = t.node;
    s.start_ns = t.start;
    s.dur_ns = t.finish - t.start;
    s.bytes = t.bytes;
    s.span_id = base + id;
    s.op = t.op;
    s.slice = t.slice;
    if (t.kind == TaskKind::kTransfer) {
      s.kind = t.from == t.node ? obs::SpanKind::kOther
               : t.cross_rack  ? obs::SpanKind::kTransferCross
                               : obs::SpanKind::kTransferInner;
    } else {
      s.kind = phase_of(t) == Phase::kRead ? obs::SpanKind::kRead
                                           : obs::SpanKind::kCompute;
    }
    s.args.emplace_back("task", static_cast<double>(id));
    if (t.start > t.ready) {
      s.args.emplace_back("queue_wait_s", util::to_sec(t.start - t.ready));
    }
    rec.add_span(std::move(s));
    for (const TaskId d : t.deps) rec.add_flow(base + d, base + id);
  }
}

void record_metrics(const RunResult& result, const topology::Cluster& cluster,
                    obs::MetricsRegistry& reg) {
  reg.gauge("sim.makespan_s").set(util::to_sec(result.makespan));
  reg.counter("sim.tasks").add(result.tasks.size());
  reg.counter("sim.cross_rack_bytes").add(result.cross_rack_bytes);
  reg.counter("sim.inner_rack_bytes").add(result.inner_rack_bytes);
  reg.counter("sim.cross_rack_transfers").add(result.cross_rack_transfers);
  reg.counter("sim.inner_rack_transfers").add(result.inner_rack_transfers);
  for (topology::RackId r = 0; r < result.rack_upload_bytes.size(); ++r) {
    const std::string prefix = "sim.rack." + std::to_string(r);
    reg.counter(prefix + ".upload_bytes").add(result.rack_upload_bytes[r]);
    reg.counter(prefix + ".download_bytes")
        .add(result.rack_download_bytes[r]);
  }

  // Port busy time, reconstructed from the task intervals: a transfer holds
  // the sender's TX and receiver's RX (plus both rack uplink channels when
  // crossing) for its whole duration; a compute holds its node's CPU. The
  // sender of a task is not in TaskStats, so busy time is charged where it
  // is attributable: RX/CPU per node, TX/RX per rack.
  std::vector<util::SimTime> node_rx(cluster.total_nodes(), 0);
  std::vector<util::SimTime> node_cpu(cluster.total_nodes(), 0);
  std::vector<util::SimTime> rack_rx(cluster.racks(), 0);
  obs::Histogram& wait = reg.histogram("sim.queue_wait_s");
  obs::Histogram& inner_dur = reg.histogram("sim.inner_transfer_s");
  obs::Histogram& cross_dur = reg.histogram("sim.cross_transfer_s");
  obs::Histogram& compute_dur = reg.histogram("sim.compute_s");
  for (const TaskStats& t : result.tasks) {
    const util::SimTime dur = t.finish - t.start;
    wait.observe(util::to_sec(t.start - t.ready));
    if (t.kind == TaskKind::kTransfer) {
      (t.cross_rack ? cross_dur : inner_dur).observe(util::to_sec(dur));
      node_rx[t.node] += dur;
      if (t.cross_rack) rack_rx[cluster.rack_of(t.node)] += dur;
    } else {
      compute_dur.observe(util::to_sec(dur));
      node_cpu[t.node] += dur;
    }
  }
  const double makespan_s = util::to_sec(result.makespan);
  for (topology::NodeId n = 0; n < cluster.total_nodes(); ++n) {
    if (node_rx[n] == 0 && node_cpu[n] == 0) continue;
    const std::string prefix = "sim.node." + std::to_string(n);
    reg.gauge(prefix + ".rx_busy_s").set(util::to_sec(node_rx[n]));
    reg.gauge(prefix + ".cpu_busy_s").set(util::to_sec(node_cpu[n]));
    if (makespan_s > 0) {
      reg.gauge(prefix + ".rx_utilization")
          .set(util::to_sec(node_rx[n]) / makespan_s);
    }
  }
  for (topology::RackId r = 0; r < cluster.racks(); ++r) {
    if (rack_rx[r] == 0) continue;
    reg.gauge("sim.rack." + std::to_string(r) + ".downlink_busy_s")
        .set(util::to_sec(rack_rx[r]));
  }

  const PhaseBreakdown phases = phase_breakdown(result);
  for (const Phase p : {Phase::kRead, Phase::kInner, Phase::kCross,
                        Phase::kDecode, Phase::kOther}) {
    const PhaseStats& s = phases.of(p);
    if (s.tasks == 0) continue;
    const std::string prefix = std::string("sim.phase.") + phase_name(p);
    reg.counter(prefix + ".tasks").add(s.tasks);
    reg.counter(prefix + ".bytes").add(s.bytes);
    reg.gauge(prefix + ".busy_s").set(util::to_sec(s.busy));
    reg.gauge(prefix + ".span_s").set(util::to_sec(s.span()));
  }
}

void record_run(const RunResult& result, const topology::Cluster& cluster,
                const obs::Probe& probe) {
  if (probe.trace != nullptr) record_spans(result, cluster, *probe.trace);
  if (probe.metrics != nullptr) record_metrics(result, cluster, *probe.metrics);
}

}  // namespace rpr::simnet
