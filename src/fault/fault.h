// Chaos / fault-injection model shared by every execution engine.
//
// The paper's premise is that repairs run while the cluster is already
// degraded — so a repair scheme that only works when all helpers stay
// healthy for the whole plan is not a repair scheme. One `FaultSchedule`
// describes the faults to inject into a single repair execution, and the
// same description drives all engines:
//
//   * simnet        — kills are applied at simulated time, stragglers scale
//                     simulated transfer durations (SimNetwork::slow_node);
//   * Testbed       — kills fire on the engine wall clock, stragglers slow
//                     the paced transfers of the afflicted node;
//   * TcpRuntime    — same, over real loopback sockets (a killed node stops
//                     its worker/acceptor; peers hit timeouts).
//
// Node-scoped fault kinds (the ones repair pipelining systems treat as
// first-class, cf. Li et al., arXiv:1908.01527):
//
//   kill      a helper node dies at time t and stays dead;
//   straggle  a node's outgoing transfers run `factor` times slower; with a
//             bounded `attempts` count the stall is transient — the first
//             `attempts` afflicted transfers fail/stall and later ones run
//             at full speed (a flapping link), which is what makes bounded
//             retry with backoff succeed without a re-plan;
//   corrupt   a stored source block's bytes are silently wrong; engines and
//             the storage layer detect it via checksums and must treat the
//             block as an erasure.
//
// Failure-domain fault kinds (rack-aware placement exists to survive
// exactly these correlated modes):
//
//   rack       a TOR switch dies: every node in rack R becomes unreachable
//              at T and stays dead — engines expand this to per-node kills;
//   partition  a fabric split at T: nodes on both sides stay ALIVE, but any
//              transfer crossing the cut fails; with `~D` the partition
//              heals after D seconds. Partitioned helpers must NOT be
//              declared lost — their banked partials stay valid and their
//              blocks become candidates again after heal;
//   slowdisk   node NODE's storage reads run F times slower (a degraded
//              disk at a helper or the replacement target);
//   diskfull   node NODE cannot accept a committed block — repair traffic
//              still flows through it, but the storage layer must relocate
//              the final commit to another node.
//
// Schedules are value types, cheap to copy, and parse from a compact spec
// string (`rpr_sim --chaos`): entries separated by ';' or ',':
//
//   kill:NODE@T            kill node NODE at T seconds (engine clock)
//   straggle:NODE*F        node NODE's transfers slowed by factor F
//   straggle:NODE*FxA      ... transient: clears after A afflicted attempts
//   corrupt:BLOCK          corrupt stripe block BLOCK at its source
//   rack:R@T               kill every node in rack R at T seconds
//   partition:{A|B}@T      split the fabric at T: racks in group A cannot
//                          reach racks in group B (rack ids '+'-separated,
//                          e.g. partition:{0+2|1}@0.5; braces optional)
//   partition:{A|B}@T~D    ... healing after D seconds
//   slowdisk:NODE*F        node NODE's disk reads slowed by factor F
//   diskfull:NODE          node NODE cannot commit a rebuilt block
//   seed:S                 seed for reproducible corruption bytes
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "topology/cluster.h"

namespace rpr::fault {

inline constexpr topology::NodeId kNoNode =
    std::numeric_limits<topology::NodeId>::max();

struct KillNode {
  topology::NodeId node = 0;
  /// Seconds since execution start on the engine's clock (simulated seconds
  /// for simnet, wall-clock seconds for the threaded engines).
  double at_s = 0.0;
};

struct Straggle {
  topology::NodeId node = 0;
  /// Outgoing-transfer slowdown multiplier (> 1).
  double factor = 8.0;
  /// Number of afflicted transfer attempts before the stall clears; the
  /// default (max) makes the degradation permanent.
  std::size_t attempts = std::numeric_limits<std::size_t>::max();

  [[nodiscard]] bool transient() const noexcept {
    return attempts != std::numeric_limits<std::size_t>::max();
  }
};

struct Corrupt {
  std::size_t block = 0;  ///< stripe block index, corrupted at its source
};

/// TOR-switch / whole-rack death: every node in `rack` dies at `at_s`.
/// Engines expand this to per-node kills via FaultSchedule::expand_racks.
struct RackKill {
  topology::RackId rack = 0;
  double at_s = 0.0;
};

/// Fabric split: racks in `side_a` cannot reach racks in `side_b` (and vice
/// versa) starting at `at_s`. Nodes on both sides stay alive. Racks listed
/// on neither side are implicitly on side A (they stay connected to the
/// majority side containing the coordinator's view of the cluster).
struct Partition {
  std::vector<topology::RackId> side_a;
  std::vector<topology::RackId> side_b;
  double at_s = 0.0;
  /// Seconds after `at_s` until the cut heals; < 0 means it never heals.
  double heal_after_s = -1.0;

  [[nodiscard]] bool heals() const noexcept { return heal_after_s >= 0.0; }

  /// 0 if `rack` is on side A (or unlisted), 1 if on side B.
  [[nodiscard]] int side_of(topology::RackId rack) const noexcept {
    for (const auto r : side_b) {
      if (r == rack) return 1;
    }
    return 0;
  }

  /// True when the cut lies between racks `a` and `b`.
  [[nodiscard]] bool separates(topology::RackId a,
                               topology::RackId b) const noexcept {
    return side_of(a) != side_of(b);
  }

  /// True when the cut is in effect at engine time `t`.
  [[nodiscard]] bool active_at(double t) const noexcept {
    if (t < at_s) return false;
    return !heals() || t < at_s + heal_after_s;
  }
};

/// Degraded disk: node's storage reads run `factor` times slower.
struct SlowDisk {
  topology::NodeId node = 0;
  double factor = 8.0;
};

/// Full disk: the node can relay repair traffic but cannot accept the
/// final committed block — the storage layer must relocate the commit.
struct DiskFull {
  topology::NodeId node = 0;
};

/// Retry/deadline policy for the threaded engines and the re-plan driver.
struct RetryPolicy {
  /// Transfer attempts per op before the peer is declared lost (>= 1).
  std::size_t max_attempts = 4;
  /// Backoff before retry i (0-based): base * multiplier^i.
  double base_backoff_s = 0.002;
  double backoff_multiplier = 2.0;
  /// Deterministic jitter span as a fraction of the backoff: retry i sleeps
  /// backoff_s(i) * (1 + jitter * u) with u in [0, 1) hashed from the op's
  /// key — concurrent ops retrying against a recovering helper spread out
  /// instead of thundering back in lockstep.
  double jitter = 0.25;
  /// An op exceeding threshold x its expected duration is a straggler: the
  /// attempt is abandoned and retried (paper-world: speculative re-fetch).
  double straggler_threshold = 4.0;
  /// Hard per-attempt cap in wall seconds (socket recv/connect timeouts).
  double op_deadline_s = 30.0;

  [[nodiscard]] double backoff_s(std::size_t retry) const noexcept {
    double b = base_backoff_s;
    for (std::size_t i = 0; i < retry; ++i) b *= backoff_multiplier;
    return b;
  }

  /// backoff_s(retry) with deterministic seeded jitter: `key` identifies
  /// the retrying op (op id, node, schedule seed — anything stable), so the
  /// same run always sleeps the same amounts but distinct ops de-correlate.
  [[nodiscard]] double backoff_jittered_s(std::size_t retry,
                                          std::uint64_t key) const noexcept;
};

struct FaultSchedule {
  std::vector<KillNode> kills;
  std::vector<Straggle> stragglers;
  std::vector<Corrupt> corruptions;
  std::vector<RackKill> rack_kills;
  std::vector<Partition> partitions;
  std::vector<SlowDisk> slow_disks;
  std::vector<DiskFull> disk_fulls;
  /// Seed for deterministic corruption bytes (chaos runs are reproducible).
  std::uint64_t seed = 0x5eed;

  [[nodiscard]] bool empty() const noexcept {
    return kills.empty() && stragglers.empty() && corruptions.empty() &&
           rack_kills.empty() && partitions.empty() && slow_disks.empty() &&
           disk_fulls.empty();
  }

  /// First straggle entry for `node`, or nullptr.
  [[nodiscard]] const Straggle* straggle_of(topology::NodeId node) const;
  /// First kill entry for `node`, or nullptr.
  [[nodiscard]] const KillNode* kill_of(topology::NodeId node) const;
  /// All corrupted block indices.
  [[nodiscard]] std::vector<std::size_t> corrupt_blocks() const;
  /// Slow-disk entry for `node`, or nullptr.
  [[nodiscard]] const SlowDisk* slowdisk_of(topology::NodeId node) const;
  /// True when `node` cannot accept a committed block.
  [[nodiscard]] bool diskfull(topology::NodeId node) const;

  /// Expands every rack kill into per-node kills for `cluster` (appended to
  /// `kills`, duplicates with existing per-node kills keep the earlier
  /// time) and clears `rack_kills`. Engines call this once at start-up so
  /// their kill machinery only ever sees node-scoped entries.
  void expand_racks(const topology::Cluster& cluster);

  /// Validates every entry against the topology: node/rack ids in range,
  /// partition sides disjoint and non-empty, corrupt indices below
  /// `total_blocks` (0 skips the corrupt check — block count unknown).
  /// Throws std::invalid_argument with a readable message.
  void validate(const topology::Cluster& cluster,
                std::size_t total_blocks = 0) const;

  /// Parses the spec grammar documented at the top of this header.
  /// Throws std::invalid_argument on malformed or conflicting input
  /// (duplicate kill/straggle/slowdisk/diskfull of a node, duplicate
  /// rack kill or corrupt of a block).
  static FaultSchedule parse(std::string_view spec);

  /// Human-readable round-trip of the schedule (not necessarily the exact
  /// input spec, but parseable by parse()).
  [[nodiscard]] std::string describe() const;
};

/// Deterministically corrupts `bytes` in place (flips a seeded selection of
/// bytes — never a no-op on a non-empty buffer).
void corrupt_bytes(std::vector<std::uint8_t>& bytes, std::uint64_t seed);

}  // namespace rpr::fault
