// Chaos / fault-injection model shared by every execution engine.
//
// The paper's premise is that repairs run while the cluster is already
// degraded — so a repair scheme that only works when all helpers stay
// healthy for the whole plan is not a repair scheme. One `FaultSchedule`
// describes the faults to inject into a single repair execution, and the
// same description drives all engines:
//
//   * simnet        — kills are applied at simulated time, stragglers scale
//                     simulated transfer durations (SimNetwork::slow_node);
//   * Testbed       — kills fire on the engine wall clock, stragglers slow
//                     the paced transfers of the afflicted node;
//   * TcpRuntime    — same, over real loopback sockets (a killed node stops
//                     its worker/acceptor; peers hit timeouts).
//
// Three fault kinds (the ones repair pipelining systems treat as
// first-class, cf. Li et al., arXiv:1908.01527):
//
//   kill      a helper node dies at time t and stays dead;
//   straggle  a node's outgoing transfers run `factor` times slower; with a
//             bounded `attempts` count the stall is transient — the first
//             `attempts` afflicted transfers fail/stall and later ones run
//             at full speed (a flapping link), which is what makes bounded
//             retry with backoff succeed without a re-plan;
//   corrupt   a stored source block's bytes are silently wrong; engines and
//             the storage layer detect it via checksums and must treat the
//             block as an erasure.
//
// Schedules are value types, cheap to copy, and parse from a compact spec
// string (`rpr_sim --chaos`): entries separated by ';' or ',':
//
//   kill:NODE@T          kill node NODE at T seconds (engine clock)
//   straggle:NODE*F      node NODE's transfers slowed by factor F
//   straggle:NODE*FxA    ... transient: clears after A afflicted attempts
//   corrupt:BLOCK        corrupt stripe block BLOCK at its source
//   seed:S               seed for reproducible corruption bytes
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "topology/cluster.h"

namespace rpr::fault {

inline constexpr topology::NodeId kNoNode =
    std::numeric_limits<topology::NodeId>::max();

struct KillNode {
  topology::NodeId node = 0;
  /// Seconds since execution start on the engine's clock (simulated seconds
  /// for simnet, wall-clock seconds for the threaded engines).
  double at_s = 0.0;
};

struct Straggle {
  topology::NodeId node = 0;
  /// Outgoing-transfer slowdown multiplier (> 1).
  double factor = 8.0;
  /// Number of afflicted transfer attempts before the stall clears; the
  /// default (max) makes the degradation permanent.
  std::size_t attempts = std::numeric_limits<std::size_t>::max();

  [[nodiscard]] bool transient() const noexcept {
    return attempts != std::numeric_limits<std::size_t>::max();
  }
};

struct Corrupt {
  std::size_t block = 0;  ///< stripe block index, corrupted at its source
};

/// Retry/deadline policy for the threaded engines and the re-plan driver.
struct RetryPolicy {
  /// Transfer attempts per op before the peer is declared lost (>= 1).
  std::size_t max_attempts = 4;
  /// Backoff before retry i (0-based): base * multiplier^i.
  double base_backoff_s = 0.002;
  double backoff_multiplier = 2.0;
  /// An op exceeding threshold x its expected duration is a straggler: the
  /// attempt is abandoned and retried (paper-world: speculative re-fetch).
  double straggler_threshold = 4.0;
  /// Hard per-attempt cap in wall seconds (socket recv/connect timeouts).
  double op_deadline_s = 30.0;

  [[nodiscard]] double backoff_s(std::size_t retry) const noexcept {
    double b = base_backoff_s;
    for (std::size_t i = 0; i < retry; ++i) b *= backoff_multiplier;
    return b;
  }
};

struct FaultSchedule {
  std::vector<KillNode> kills;
  std::vector<Straggle> stragglers;
  std::vector<Corrupt> corruptions;
  /// Seed for deterministic corruption bytes (chaos runs are reproducible).
  std::uint64_t seed = 0x5eed;

  [[nodiscard]] bool empty() const noexcept {
    return kills.empty() && stragglers.empty() && corruptions.empty();
  }

  /// First straggle entry for `node`, or nullptr.
  [[nodiscard]] const Straggle* straggle_of(topology::NodeId node) const;
  /// First kill entry for `node`, or nullptr.
  [[nodiscard]] const KillNode* kill_of(topology::NodeId node) const;
  /// All corrupted block indices.
  [[nodiscard]] std::vector<std::size_t> corrupt_blocks() const;

  /// Parses the spec grammar documented at the top of this header.
  /// Throws std::invalid_argument on malformed input.
  static FaultSchedule parse(std::string_view spec);

  /// Human-readable round-trip of the schedule (not necessarily the exact
  /// input spec, but parseable by parse()).
  [[nodiscard]] std::string describe() const;
};

/// Deterministically corrupts `bytes` in place (flips a seeded selection of
/// bytes — never a no-op on a non-empty buffer).
void corrupt_bytes(std::vector<std::uint8_t>& bytes, std::uint64_t seed);

}  // namespace rpr::fault
