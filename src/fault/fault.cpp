#include "fault/fault.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace rpr::fault {
namespace {

[[noreturn]] void bad_spec(std::string_view entry, const char* why) {
  std::ostringstream os;
  os << "FaultSchedule::parse: bad entry '" << entry << "': " << why;
  throw std::invalid_argument(os.str());
}

std::uint64_t parse_u64(std::string_view entry, std::string_view text,
                        const char* what) {
  std::uint64_t value = 0;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) bad_spec(entry, what);
  return value;
}

double parse_double(std::string_view entry, std::string_view text,
                    const char* what) {
  if (text.empty()) bad_spec(entry, what);
  std::string owned(text);
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(owned, &consumed);
  } catch (const std::exception&) {
    bad_spec(entry, what);
  }
  if (consumed != owned.size()) bad_spec(entry, what);
  return value;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

void parse_entry(FaultSchedule& out, std::string_view entry) {
  const auto colon = entry.find(':');
  if (colon == std::string_view::npos) {
    bad_spec(entry, "expected '<kind>:<args>'");
  }
  const std::string_view kind = entry.substr(0, colon);
  const std::string_view args = entry.substr(colon + 1);

  if (kind == "kill") {
    const auto at = args.find('@');
    if (at == std::string_view::npos) bad_spec(entry, "expected 'NODE@T'");
    KillNode k;
    k.node = parse_u64(entry, args.substr(0, at), "node id must be a number");
    k.at_s = parse_double(entry, args.substr(at + 1),
                          "kill time must be a number of seconds");
    if (k.at_s < 0.0) bad_spec(entry, "kill time must be >= 0");
    out.kills.push_back(k);
  } else if (kind == "straggle") {
    const auto star = args.find('*');
    if (star == std::string_view::npos) bad_spec(entry, "expected 'NODE*F'");
    Straggle s;
    s.node = parse_u64(entry, args.substr(0, star), "node id must be a number");
    std::string_view rest = args.substr(star + 1);
    const auto x = rest.find('x');
    if (x != std::string_view::npos) {
      s.attempts = parse_u64(entry, rest.substr(x + 1),
                             "attempt count must be a number");
      if (s.attempts == 0) bad_spec(entry, "attempt count must be >= 1");
      rest = rest.substr(0, x);
    }
    s.factor = parse_double(entry, rest, "slowdown factor must be a number");
    if (s.factor <= 1.0) bad_spec(entry, "slowdown factor must be > 1");
    out.stragglers.push_back(s);
  } else if (kind == "corrupt") {
    Corrupt c;
    c.block = parse_u64(entry, args, "block index must be a number");
    out.corruptions.push_back(c);
  } else if (kind == "seed") {
    out.seed = parse_u64(entry, args, "seed must be a number");
  } else {
    bad_spec(entry, "unknown kind (want kill/straggle/corrupt/seed)");
  }
}

}  // namespace

const Straggle* FaultSchedule::straggle_of(topology::NodeId node) const {
  for (const auto& s : stragglers) {
    if (s.node == node) return &s;
  }
  return nullptr;
}

const KillNode* FaultSchedule::kill_of(topology::NodeId node) const {
  for (const auto& k : kills) {
    if (k.node == node) return &k;
  }
  return nullptr;
}

std::vector<std::size_t> FaultSchedule::corrupt_blocks() const {
  std::vector<std::size_t> out;
  out.reserve(corruptions.size());
  for (const auto& c : corruptions) out.push_back(c.block);
  return out;
}

FaultSchedule FaultSchedule::parse(std::string_view spec) {
  FaultSchedule out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ';' || spec[i] == ',') {
      const std::string_view entry = trim(spec.substr(begin, i - begin));
      if (!entry.empty()) parse_entry(out, entry);
      begin = i + 1;
    }
  }
  return out;
}

std::string FaultSchedule::describe() const {
  std::ostringstream os;
  const char* sep = "";
  for (const auto& k : kills) {
    os << sep << "kill:" << k.node << '@' << k.at_s;
    sep = ";";
  }
  for (const auto& s : stragglers) {
    os << sep << "straggle:" << s.node << '*' << s.factor;
    if (s.transient()) os << 'x' << s.attempts;
    sep = ";";
  }
  for (const auto& c : corruptions) {
    os << sep << "corrupt:" << c.block;
    sep = ";";
  }
  os << sep << "seed:" << seed;
  return os.str();
}

void corrupt_bytes(std::vector<std::uint8_t>& bytes, std::uint64_t seed) {
  if (bytes.empty()) return;
  util::Xoshiro256 rng(seed);
  // Flip a handful of bytes with a guaranteed-nonzero XOR mask so the
  // corruption can never accidentally restore the original content.
  const std::size_t flips = 1 + rng.below(std::min<std::uint64_t>(
                                    bytes.size(), 16));
  for (std::size_t i = 0; i < flips; ++i) {
    const std::size_t pos = rng.below(bytes.size());
    const auto mask = static_cast<std::uint8_t>(1 + rng.below(255));
    bytes[pos] ^= mask;
  }
}

}  // namespace rpr::fault
