#include "fault/fault.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace rpr::fault {
namespace {

[[noreturn]] void bad_spec(std::string_view entry, const char* why) {
  std::ostringstream os;
  os << "FaultSchedule::parse: bad entry '" << entry << "': " << why;
  throw std::invalid_argument(os.str());
}

std::uint64_t parse_u64(std::string_view entry, std::string_view text,
                        const char* what) {
  std::uint64_t value = 0;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) bad_spec(entry, what);
  return value;
}

double parse_double(std::string_view entry, std::string_view text,
                    const char* what) {
  if (text.empty()) bad_spec(entry, what);
  std::string owned(text);
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(owned, &consumed);
  } catch (const std::exception&) {
    bad_spec(entry, what);
  }
  if (consumed != owned.size()) bad_spec(entry, what);
  return value;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Rack ids '+'-separated ('+' because ',' and ';' split entries).
std::vector<topology::RackId> parse_rack_group(std::string_view entry,
                                               std::string_view text) {
  std::vector<topology::RackId> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '+') {
      const auto id = trim(text.substr(begin, i - begin));
      out.push_back(parse_u64(entry, id, "rack id must be a number"));
      begin = i + 1;
    }
  }
  return out;
}

void parse_partition(FaultSchedule& out, std::string_view entry,
                     std::string_view args) {
  const auto at = args.find('@');
  if (at == std::string_view::npos) {
    bad_spec(entry, "expected '{A|B}@T' or '{A|B}@T~D'");
  }
  std::string_view sides = trim(args.substr(0, at));
  if (sides.size() >= 2 && sides.front() == '{' && sides.back() == '}') {
    sides = sides.substr(1, sides.size() - 2);
  }
  const auto bar = sides.find('|');
  if (bar == std::string_view::npos) {
    bad_spec(entry, "expected two '|'-separated rack groups");
  }
  Partition p;
  p.side_a = parse_rack_group(entry, sides.substr(0, bar));
  p.side_b = parse_rack_group(entry, sides.substr(bar + 1));
  std::string_view when = args.substr(at + 1);
  const auto tilde = when.find('~');
  if (tilde != std::string_view::npos) {
    p.heal_after_s = parse_double(entry, when.substr(tilde + 1),
                                  "heal delay must be a number of seconds");
    if (p.heal_after_s < 0.0) bad_spec(entry, "heal delay must be >= 0");
    when = when.substr(0, tilde);
  }
  p.at_s =
      parse_double(entry, when, "partition time must be a number of seconds");
  if (p.at_s < 0.0) bad_spec(entry, "partition time must be >= 0");
  std::set<topology::RackId> seen;
  for (const auto r : p.side_a) {
    if (!seen.insert(r).second) bad_spec(entry, "rack listed twice");
  }
  for (const auto r : p.side_b) {
    if (!seen.insert(r).second) {
      bad_spec(entry, "rack listed on both sides of the partition");
    }
  }
  out.partitions.push_back(std::move(p));
}

void parse_entry(FaultSchedule& out, std::string_view entry) {
  const auto colon = entry.find(':');
  if (colon == std::string_view::npos) {
    bad_spec(entry, "expected '<kind>:<args>'");
  }
  const std::string_view kind = entry.substr(0, colon);
  const std::string_view args = entry.substr(colon + 1);

  if (kind == "kill") {
    const auto at = args.find('@');
    if (at == std::string_view::npos) bad_spec(entry, "expected 'NODE@T'");
    KillNode k;
    k.node = parse_u64(entry, args.substr(0, at), "node id must be a number");
    k.at_s = parse_double(entry, args.substr(at + 1),
                          "kill time must be a number of seconds");
    if (k.at_s < 0.0) bad_spec(entry, "kill time must be >= 0");
    if (out.kill_of(k.node) != nullptr) {
      bad_spec(entry, "duplicate kill of the same node");
    }
    out.kills.push_back(k);
  } else if (kind == "straggle") {
    const auto star = args.find('*');
    if (star == std::string_view::npos) bad_spec(entry, "expected 'NODE*F'");
    Straggle s;
    s.node = parse_u64(entry, args.substr(0, star), "node id must be a number");
    std::string_view rest = args.substr(star + 1);
    const auto x = rest.find('x');
    if (x != std::string_view::npos) {
      s.attempts = parse_u64(entry, rest.substr(x + 1),
                             "attempt count must be a number");
      if (s.attempts == 0) bad_spec(entry, "attempt count must be >= 1");
      rest = rest.substr(0, x);
    }
    s.factor = parse_double(entry, rest, "slowdown factor must be a number");
    if (s.factor <= 1.0) bad_spec(entry, "slowdown factor must be > 1");
    if (out.straggle_of(s.node) != nullptr) {
      bad_spec(entry, "duplicate straggle of the same node");
    }
    out.stragglers.push_back(s);
  } else if (kind == "corrupt") {
    Corrupt c;
    c.block = parse_u64(entry, args, "block index must be a number");
    for (const auto& existing : out.corruptions) {
      if (existing.block == c.block) {
        bad_spec(entry, "duplicate corrupt of the same block");
      }
    }
    out.corruptions.push_back(c);
  } else if (kind == "rack") {
    const auto at = args.find('@');
    if (at == std::string_view::npos) bad_spec(entry, "expected 'RACK@T'");
    RackKill rk;
    rk.rack = parse_u64(entry, args.substr(0, at), "rack id must be a number");
    rk.at_s = parse_double(entry, args.substr(at + 1),
                           "kill time must be a number of seconds");
    if (rk.at_s < 0.0) bad_spec(entry, "kill time must be >= 0");
    for (const auto& existing : out.rack_kills) {
      if (existing.rack == rk.rack) {
        bad_spec(entry, "duplicate kill of the same rack");
      }
    }
    out.rack_kills.push_back(rk);
  } else if (kind == "partition") {
    parse_partition(out, entry, args);
  } else if (kind == "slowdisk") {
    const auto star = args.find('*');
    if (star == std::string_view::npos) bad_spec(entry, "expected 'NODE*F'");
    SlowDisk d;
    d.node = parse_u64(entry, args.substr(0, star), "node id must be a number");
    d.factor = parse_double(entry, args.substr(star + 1),
                            "slowdown factor must be a number");
    if (d.factor <= 1.0) bad_spec(entry, "slowdown factor must be > 1");
    if (out.slowdisk_of(d.node) != nullptr) {
      bad_spec(entry, "duplicate slowdisk of the same node");
    }
    out.slow_disks.push_back(d);
  } else if (kind == "diskfull") {
    DiskFull f;
    f.node = parse_u64(entry, args, "node id must be a number");
    if (out.diskfull(f.node)) {
      bad_spec(entry, "duplicate diskfull of the same node");
    }
    out.disk_fulls.push_back(f);
  } else if (kind == "seed") {
    out.seed = parse_u64(entry, args, "seed must be a number");
  } else {
    bad_spec(entry,
             "unknown kind (want kill/straggle/corrupt/rack/partition/"
             "slowdisk/diskfull/seed)");
  }
}

/// splitmix64 finalizer — a cheap, well-mixed 64-bit hash.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double RetryPolicy::backoff_jittered_s(std::size_t retry,
                                       std::uint64_t key) const noexcept {
  const double b = backoff_s(retry);
  if (jitter <= 0.0) return b;
  const std::uint64_t h = mix64(mix64(key) ^ (retry + 1));
  // 53 high bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return b * (1.0 + jitter * u);
}

const Straggle* FaultSchedule::straggle_of(topology::NodeId node) const {
  for (const auto& s : stragglers) {
    if (s.node == node) return &s;
  }
  return nullptr;
}

const KillNode* FaultSchedule::kill_of(topology::NodeId node) const {
  for (const auto& k : kills) {
    if (k.node == node) return &k;
  }
  return nullptr;
}

std::vector<std::size_t> FaultSchedule::corrupt_blocks() const {
  std::vector<std::size_t> out;
  out.reserve(corruptions.size());
  for (const auto& c : corruptions) out.push_back(c.block);
  return out;
}

const SlowDisk* FaultSchedule::slowdisk_of(topology::NodeId node) const {
  for (const auto& d : slow_disks) {
    if (d.node == node) return &d;
  }
  return nullptr;
}

bool FaultSchedule::diskfull(topology::NodeId node) const {
  for (const auto& f : disk_fulls) {
    if (f.node == node) return true;
  }
  return false;
}

void FaultSchedule::expand_racks(const topology::Cluster& cluster) {
  for (const auto& rk : rack_kills) {
    for (const auto node : cluster.nodes_in_rack(rk.rack)) {
      if (const auto* existing = kill_of(node)) {
        // Keep whichever death strikes first.
        if (existing->at_s > rk.at_s) {
          for (auto& k : kills) {
            if (k.node == node) k.at_s = rk.at_s;
          }
        }
        continue;
      }
      kills.push_back(KillNode{node, rk.at_s});
    }
  }
  rack_kills.clear();
}

void FaultSchedule::validate(const topology::Cluster& cluster,
                             std::size_t total_blocks) const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("FaultSchedule::validate: " + what);
  };
  const auto check_node = [&](topology::NodeId node, const char* kind) {
    if (node >= cluster.total_nodes()) {
      bad(std::string(kind) + ": node " + std::to_string(node) +
          " out of range (cluster has " +
          std::to_string(cluster.total_nodes()) + " nodes)");
    }
  };
  const auto check_rack = [&](topology::RackId rack, const char* kind) {
    if (rack >= cluster.racks()) {
      bad(std::string(kind) + ": rack " + std::to_string(rack) +
          " out of range (cluster has " + std::to_string(cluster.racks()) +
          " racks)");
    }
  };
  for (const auto& k : kills) check_node(k.node, "kill");
  for (const auto& s : stragglers) check_node(s.node, "straggle");
  for (const auto& d : slow_disks) check_node(d.node, "slowdisk");
  for (const auto& f : disk_fulls) check_node(f.node, "diskfull");
  for (const auto& rk : rack_kills) check_rack(rk.rack, "rack");
  for (const auto& p : partitions) {
    if (p.side_a.empty() || p.side_b.empty()) {
      bad("partition: both sides must name at least one rack");
    }
    for (const auto r : p.side_a) check_rack(r, "partition");
    for (const auto r : p.side_b) check_rack(r, "partition");
  }
  if (total_blocks > 0) {
    for (const auto& c : corruptions) {
      if (c.block >= total_blocks) {
        bad("corrupt: block " + std::to_string(c.block) +
            " out of range (stripe has " + std::to_string(total_blocks) +
            " blocks)");
      }
    }
  }
}

FaultSchedule FaultSchedule::parse(std::string_view spec) {
  FaultSchedule out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ';' || spec[i] == ',') {
      const std::string_view entry = trim(spec.substr(begin, i - begin));
      if (!entry.empty()) parse_entry(out, entry);
      begin = i + 1;
    }
  }
  return out;
}

std::string FaultSchedule::describe() const {
  std::ostringstream os;
  const char* sep = "";
  for (const auto& k : kills) {
    os << sep << "kill:" << k.node << '@' << k.at_s;
    sep = ";";
  }
  for (const auto& s : stragglers) {
    os << sep << "straggle:" << s.node << '*' << s.factor;
    if (s.transient()) os << 'x' << s.attempts;
    sep = ";";
  }
  for (const auto& c : corruptions) {
    os << sep << "corrupt:" << c.block;
    sep = ";";
  }
  for (const auto& rk : rack_kills) {
    os << sep << "rack:" << rk.rack << '@' << rk.at_s;
    sep = ";";
  }
  for (const auto& p : partitions) {
    os << sep << "partition:{";
    const char* plus = "";
    for (const auto r : p.side_a) {
      os << plus << r;
      plus = "+";
    }
    os << '|';
    plus = "";
    for (const auto r : p.side_b) {
      os << plus << r;
      plus = "+";
    }
    os << "}@" << p.at_s;
    if (p.heals()) os << '~' << p.heal_after_s;
    sep = ";";
  }
  for (const auto& d : slow_disks) {
    os << sep << "slowdisk:" << d.node << '*' << d.factor;
    sep = ";";
  }
  for (const auto& f : disk_fulls) {
    os << sep << "diskfull:" << f.node;
    sep = ";";
  }
  os << sep << "seed:" << seed;
  return os.str();
}

void corrupt_bytes(std::vector<std::uint8_t>& bytes, std::uint64_t seed) {
  if (bytes.empty()) return;
  util::Xoshiro256 rng(seed);
  // Flip a handful of bytes with a guaranteed-nonzero XOR mask so the
  // corruption can never accidentally restore the original content.
  const std::size_t flips = 1 + rng.below(std::min<std::uint64_t>(
                                    bytes.size(), 16));
  for (std::size_t i = 0; i < flips; ++i) {
    const std::size_t pos = rng.below(bytes.size());
    const auto mask = static_cast<std::uint8_t>(1 + rng.below(255));
    bytes[pos] ^= mask;
  }
}

}  // namespace rpr::fault
