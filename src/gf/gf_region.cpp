// Dispatch front-end for the GF region kernels.
//
// Tier selection happens once, on the first region operation: probe the CPU
// (via __builtin_cpu_supports on x86; AdvSIMD is unconditional on AArch64),
// then honor an RPR_GF_FORCE=scalar|ssse3|avx2|neon|avx512|gfni override if
// it names a supported tier. After that every call is one relaxed atomic load plus an
// indirect call — negligible against block-sized region passes.
#include "gf/gf_region.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "gf/gf256.h"
#include "gf/gf_kernels.h"

namespace rpr::gf {

namespace detail {

namespace {

const Kernels* kernels_for(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kScalar:
      return &scalar_kernels();
#if defined(__x86_64__) || defined(__i386__)
    case SimdTier::kSsse3:
      return &ssse3_kernels();
    case SimdTier::kAvx2:
      return &avx2_kernels();
    case SimdTier::kAvx512:
      return &avx512_kernels();
    case SimdTier::kGfni:
      return &gfni_kernels();
#endif
#if defined(__aarch64__)
    case SimdTier::kNeon:
      return &neon_kernels();
#endif
    default:
      return nullptr;
  }
}

// The active kernel table. Never null after init(); stores are release so a
// reader that observes the pointer also observes the tier value set with it.
std::atomic<const Kernels*> g_active{nullptr};
std::atomic<SimdTier> g_tier{SimdTier::kScalar};

void store_tier(SimdTier tier) noexcept {
  g_tier.store(tier, std::memory_order_relaxed);
  g_active.store(kernels_for(tier), std::memory_order_release);
}

const Kernels* init() noexcept {
  SimdTier tier = best_tier();
  if (const char* force = std::getenv("RPR_GF_FORCE")) {
    const auto parsed = parse_tier(force);
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "rpr: ignoring unrecognized RPR_GF_FORCE=%s "
                   "(want scalar|ssse3|avx2|neon|avx512|gfni)\n",
                   force);
    } else if (!tier_supported(*parsed)) {
      std::fprintf(stderr,
                   "rpr: RPR_GF_FORCE=%s not supported on this CPU, using %s\n",
                   force, tier_name(tier));
    } else {
      tier = *parsed;
    }
  }
  store_tier(tier);
  return g_active.load(std::memory_order_relaxed);
}

}  // namespace

const Kernels& active_kernels() noexcept {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) k = init();
  return *k;
}

}  // namespace detail

SimdTier active_tier() noexcept {
  detail::active_kernels();  // ensure selection happened
  return detail::g_tier.load(std::memory_order_relaxed);
}

bool tier_supported(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case SimdTier::kSsse3:
      return __builtin_cpu_supports("ssse3") != 0;
    case SimdTier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case SimdTier::kAvx512:
      // BW for byte shuffles/masks, VL because the TU freely mixes vector
      // widths; both gated on the TU actually carrying AVX-512 codegen.
      return detail::avx512_tu_compiled() &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
    case SimdTier::kGfni:
      return tier_supported(SimdTier::kAvx512) &&
             __builtin_cpu_supports("gfni") != 0;
    case SimdTier::kNeon:
      return false;
#elif defined(__aarch64__)
    case SimdTier::kNeon:
      return true;
    case SimdTier::kSsse3:
    case SimdTier::kAvx2:
    case SimdTier::kAvx512:
    case SimdTier::kGfni:
      return false;
#else
    default:
      return false;
#endif
  }
  return false;
}

SimdTier best_tier() noexcept {
#if defined(__aarch64__)
  return SimdTier::kNeon;
#else
  if (tier_supported(SimdTier::kGfni)) return SimdTier::kGfni;
  if (tier_supported(SimdTier::kAvx512)) return SimdTier::kAvx512;
  if (tier_supported(SimdTier::kAvx2)) return SimdTier::kAvx2;
  if (tier_supported(SimdTier::kSsse3)) return SimdTier::kSsse3;
  return SimdTier::kScalar;
#endif
}

std::vector<SimdTier> supported_tiers() {
  std::vector<SimdTier> tiers;
  for (SimdTier t : {SimdTier::kScalar, SimdTier::kSsse3, SimdTier::kAvx2,
                     SimdTier::kNeon, SimdTier::kAvx512, SimdTier::kGfni}) {
    if (tier_supported(t)) tiers.push_back(t);
  }
  return tiers;
}

bool set_tier(SimdTier tier) noexcept {
  if (!tier_supported(tier)) return false;
  detail::store_tier(tier);
  return true;
}

const char* tier_name(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSsse3:
      return "ssse3";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kNeon:
      return "neon";
    case SimdTier::kAvx512:
      return "avx512";
    case SimdTier::kGfni:
      return "gfni";
  }
  return "unknown";
}

std::optional<SimdTier> parse_tier(std::string_view spec) noexcept {
  if (spec == "scalar") return SimdTier::kScalar;
  if (spec == "ssse3") return SimdTier::kSsse3;
  if (spec == "avx2") return SimdTier::kAvx2;
  if (spec == "neon") return SimdTier::kNeon;
  if (spec == "avx512") return SimdTier::kAvx512;
  if (spec == "gfni") return SimdTier::kGfni;
  return std::nullopt;
}

void xor_region(std::span<std::uint8_t> dst,
                std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  detail::active_kernels().xor_region(dst.data(), src.data(), dst.size());
}

void mul_region(std::uint8_t c, std::span<std::uint8_t> dst,
                std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  if (c == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (c == 1) {
    if (dst.data() != src.data()) {
      std::memcpy(dst.data(), src.data(), dst.size());
    }
    return;
  }
  const std::uint8_t* s = src.data();
  detail::active_kernels().mul_region_multi(&c, 1, &s, dst.data(), dst.size(),
                                            /*accumulate=*/false);
}

void mul_region_add(std::uint8_t c, std::span<std::uint8_t> dst,
                    std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  if (c == 0) return;
  if (c == 1) {
    xor_region(dst, src);
    return;
  }
  detail::active_kernels().mul_region_add(c, dst.data(), src.data(),
                                          dst.size());
}

void mul_region_add_general(std::uint8_t c, std::span<std::uint8_t> dst,
                            std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  if (c == 0) return;
  // Deliberately no c == 1 shortcut: this models the traditional decoder's
  // uniform multiply pass (still dispatched, so each tier pays its own
  // multiply cost rather than the XOR fast path's).
  detail::active_kernels().mul_region_add(c, dst.data(), src.data(),
                                          dst.size());
}

void mul_region_add_multi(std::span<const std::uint8_t> coeffs,
                          const std::uint8_t* const* srcs,
                          std::span<std::uint8_t> dst) {
  detail::active_kernels().mul_region_multi(coeffs.data(), coeffs.size(), srcs,
                                            dst.data(), dst.size(),
                                            /*accumulate=*/true);
}

void encode_regions(std::span<const std::uint8_t> matrix, std::size_t rows,
                    std::size_t cols, const std::uint8_t* const* srcs,
                    std::uint8_t* const* dsts, std::size_t len) {
  assert(matrix.size() >= rows * cols);
  const detail::Kernels& k = detail::active_kernels();
  for (std::size_t r = 0; r < rows; ++r) {
    k.mul_region_multi(matrix.data() + r * cols, cols, srcs, dsts[r], len,
                       /*accumulate=*/false);
  }
}

namespace ref {

void xor_region(std::span<std::uint8_t> dst,
                std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

void mul_region_add(std::uint8_t c, std::span<std::uint8_t> dst,
                    std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= mul(c, src[i]);
}

void mul_region_add_multi(std::span<const std::uint8_t> coeffs,
                          const std::uint8_t* const* srcs,
                          std::span<std::uint8_t> dst) {
  for (std::size_t s = 0; s < coeffs.size(); ++s) {
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i] ^= mul(coeffs[s], srcs[s][i]);
    }
  }
}

}  // namespace ref

}  // namespace rpr::gf
