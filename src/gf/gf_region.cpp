#include "gf/gf_region.h"

#include <cassert>
#include <cstring>

#include "gf/gf256.h"

namespace rpr::gf {

namespace {

// Per-coefficient split tables: for a byte b = hi<<4 | lo,
//   c * b = lo_table[lo] ^ hi_table[hi]
// because multiplication distributes over XOR and b = (hi<<4) ^ lo.
struct SplitTables {
  std::uint8_t lo[16];
  std::uint8_t hi[16];
};

SplitTables make_split(std::uint8_t c) {
  SplitTables t;
  for (unsigned i = 0; i < 16; ++i) {
    t.lo[i] = mul(c, static_cast<std::uint8_t>(i));
    t.hi[i] = mul(c, static_cast<std::uint8_t>(i << 4));
  }
  return t;
}

// Full 256-entry product table for one coefficient, built from the split
// tables. One L1-resident lookup per byte; on scalar hardware this is the
// fastest portable approach.
struct ProductTable {
  std::uint8_t p[256];
};

ProductTable make_product(std::uint8_t c) {
  const SplitTables s = make_split(c);
  ProductTable t;
  for (unsigned b = 0; b < 256; ++b) {
    t.p[b] = static_cast<std::uint8_t>(s.lo[b & 0xF] ^ s.hi[b >> 4]);
  }
  return t;
}

}  // namespace

void xor_region(std::span<std::uint8_t> dst,
                std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  std::size_t i = 0;
  const std::size_t n = dst.size();
  // Word-wide main loop. memcpy keeps this strict-aliasing clean; the
  // compiler lowers it to plain loads/stores.
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t a, b;
    std::memcpy(&a, dst.data() + i, sizeof(a));
    std::memcpy(&b, src.data() + i, sizeof(b));
    a ^= b;
    std::memcpy(dst.data() + i, &a, sizeof(a));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void mul_region(std::uint8_t c, std::span<std::uint8_t> dst,
                std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  if (c == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (c == 1) {
    if (dst.data() != src.data()) {
      std::memcpy(dst.data(), src.data(), dst.size());
    }
    return;
  }
  const ProductTable t = make_product(c);
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] = t.p[src[i]];
}

void mul_region_add(std::uint8_t c, std::span<std::uint8_t> dst,
                    std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  if (c == 0) return;
  if (c == 1) {
    xor_region(dst, src);
    return;
  }
  mul_region_add_general(c, dst, src);
}

void mul_region_add_general(std::uint8_t c, std::span<std::uint8_t> dst,
                            std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  if (c == 0) return;
  const ProductTable t = make_product(c);
  const std::size_t n = dst.size();
  std::size_t i = 0;
  // Unroll by 4 to give the scalar pipeline some ILP between dependent
  // table loads.
  for (; i + 4 <= n; i += 4) {
    dst[i] ^= t.p[src[i]];
    dst[i + 1] ^= t.p[src[i + 1]];
    dst[i + 2] ^= t.p[src[i + 2]];
    dst[i + 3] ^= t.p[src[i + 3]];
  }
  for (; i < n; ++i) dst[i] ^= t.p[src[i]];
}

namespace ref {

void xor_region(std::span<std::uint8_t> dst,
                std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

void mul_region_add(std::uint8_t c, std::span<std::uint8_t> dst,
                    std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= mul(c, src[i]);
}

}  // namespace ref

}  // namespace rpr::gf
