// Scalar (portable) region kernels — the dispatch fallback on hardware
// without byte-shuffle SIMD, and the RPR_GF_FORCE=scalar reference tier.
//
// Unlike the pre-dispatch code these never build tables per call: the
// single-coefficient path indexes one 256-byte row of the shared product
// table (L1-resident), and the multi-source path walks the destination in
// L1-sized chunks so each dst cache line is written once per chunk sweep
// rather than streamed through memory once per source.
#include <cstring>

#include "gf/gf_kernels.h"

namespace rpr::gf::detail {

namespace {

void xor_region_scalar(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t n) {
  std::size_t i = 0;
  // Word-wide main loop. memcpy keeps this strict-aliasing clean; the
  // compiler lowers it to plain loads/stores.
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t a, b;
    std::memcpy(&a, dst + i, sizeof(a));
    std::memcpy(&b, src + i, sizeof(b));
    a ^= b;
    std::memcpy(dst + i, &a, sizeof(a));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void mul_region_add_scalar(std::uint8_t c, std::uint8_t* dst,
                           const std::uint8_t* src, std::size_t n) {
  const std::uint8_t* row = product_tables()[c];
  std::size_t i = 0;
  // Unroll by 4 to give the scalar pipeline some ILP between dependent
  // table loads.
  for (; i + 4 <= n; i += 4) {
    dst[i] ^= row[src[i]];
    dst[i + 1] ^= row[src[i + 1]];
    dst[i + 2] ^= row[src[i + 2]];
    dst[i + 3] ^= row[src[i + 3]];
  }
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

// Chunk size for the fused loop: small enough that the destination chunk
// stays in L1 across all source sweeps, large enough to amortize loop
// overhead.
constexpr std::size_t kFuseChunk = 4096;

void mul_region_multi_scalar(const std::uint8_t* coeffs, std::size_t k,
                             const std::uint8_t* const* srcs,
                             std::uint8_t* dst, std::size_t n,
                             bool accumulate) {
  for (std::size_t off = 0; off < n; off += kFuseChunk) {
    const std::size_t len = n - off < kFuseChunk ? n - off : kFuseChunk;
    std::uint8_t* d = dst + off;
    bool live = accumulate;
    for (std::size_t s = 0; s < k; ++s) {
      const std::uint8_t c = coeffs[s];
      if (c == 0) continue;
      const std::uint8_t* in = srcs[s] + off;
      if (!live) {
        if (c == 1) {
          std::memcpy(d, in, len);
        } else {
          const std::uint8_t* row = product_tables()[c];
          for (std::size_t i = 0; i < len; ++i) d[i] = row[in[i]];
        }
        live = true;
      } else if (c == 1) {
        xor_region_scalar(d, in, len);
      } else {
        mul_region_add_scalar(c, d, in, len);
      }
    }
    if (!live) std::memset(d, 0, len);
  }
}

}  // namespace

const Kernels& scalar_kernels() {
  static constexpr Kernels k{
      "scalar",          xor_region_scalar,      mul_region_add_scalar,
      mul_region_multi_scalar, /*gf16_mul_region_add=*/nullptr,
  };
  return k;
}

}  // namespace rpr::gf::detail
