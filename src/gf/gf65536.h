// GF(2^16) arithmetic — the w = 16 field of Jerasure.
//
// The paper's codes all fit in GF(2^8) (n + k <= 256), but the substrate it
// builds on (Jerasure) also ships w = 16, which production systems use for
// very wide stripes. This module provides the same field interface as
// gf256.h so a wide-code RS codec can be layered on later; it is fully
// tested and benchmarked but not yet wired into RSCode (tracked in
// DESIGN.md as the natural extension path).
//
// Polynomial: x^16 + x^12 + x^3 + x + 1 (0x1100B), Jerasure's default.
// Tables (log/exp/inverse, ~512 KiB total) are built once on first use via
// a thread-safe function-local static.
#pragma once

#include <cstdint>
#include <span>

namespace rpr::gf16 {

inline constexpr unsigned kPrimPoly = 0x1100B;
inline constexpr std::uint32_t kGroupOrder = 65535;

/// a + b == a - b == XOR, as in every GF(2^w).
constexpr std::uint16_t add(std::uint16_t a, std::uint16_t b) noexcept {
  return a ^ b;
}

[[nodiscard]] std::uint16_t mul(std::uint16_t a, std::uint16_t b) noexcept;
/// Precondition: a != 0.
[[nodiscard]] std::uint16_t inv(std::uint16_t a) noexcept;
/// Precondition: b != 0.
[[nodiscard]] std::uint16_t div(std::uint16_t a, std::uint16_t b) noexcept;
/// a^e with 0^0 == 1.
[[nodiscard]] std::uint16_t pow(std::uint16_t a, unsigned e) noexcept;

/// dst ^= c * src over little-endian 16-bit elements. Sizes must match and
/// be even. Uses per-call 512-entry split product tables (the 16-bit
/// analogue of the byte kernel in gf_region.h).
void mul_region_add(std::uint16_t c, std::span<std::uint8_t> dst,
                    std::span<const std::uint8_t> src);

}  // namespace rpr::gf16
