#include "gf/gf65536.h"

#include <array>
#include <cassert>
#include <cstring>
#include <memory>

#include "gf/gf_kernels.h"

namespace rpr::gf16 {

namespace {

struct Tables {
  // exp_ doubled so mul() needs no modular reduction of the log sum.
  std::array<std::uint16_t, 2 * kGroupOrder> exp_;
  std::array<std::uint16_t, 65536> log_;
  std::array<std::uint16_t, 65536> inv_;
};

const Tables& tables() {
  static const std::unique_ptr<Tables> t = [] {
    auto out = std::make_unique<Tables>();
    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < kGroupOrder; ++i) {
      out->exp_[i] = static_cast<std::uint16_t>(x);
      out->exp_[i + kGroupOrder] = static_cast<std::uint16_t>(x);
      out->log_[x] = static_cast<std::uint16_t>(i);
      x <<= 1;
      if (x & 0x10000u) x ^= kPrimPoly;
    }
    out->log_[0] = 0;  // undefined; callers branch on zero
    out->inv_[0] = 0;
    for (std::uint32_t a = 1; a < 65536; ++a) {
      const std::uint32_t l = kGroupOrder - out->log_[a];
      out->inv_[a] = out->exp_[l % kGroupOrder];
    }
    return out;
  }();
  return *t;
}

}  // namespace

std::uint16_t mul(std::uint16_t a, std::uint16_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp_[static_cast<std::size_t>(t.log_[a]) + t.log_[b]];
}

std::uint16_t inv(std::uint16_t a) noexcept { return tables().inv_[a]; }

std::uint16_t div(std::uint16_t a, std::uint16_t b) noexcept {
  return mul(a, inv(b));
}

std::uint16_t pow(std::uint16_t a, unsigned e) noexcept {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  const std::uint64_t l =
      (static_cast<std::uint64_t>(t.log_[a]) * e) % kGroupOrder;
  return t.exp_[l];
}

void mul_region_add(std::uint16_t c, std::span<std::uint8_t> dst,
                    std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  assert(dst.size() % 2 == 0 && "16-bit elements");
  if (c == 0) return;

  // SIMD path: 4-bit split tables in the byte-planar layout the vector
  // kernels shuffle with (x = n3<<12|n2<<8|n1<<4|n0, c*x = XOR of four
  // 16-entry lookups). Coding loops reuse a small set of coefficients across
  // many region passes (one per matrix entry, repeated for every block of
  // every stripe), so the tables are kept in a per-thread direct-mapped
  // cache keyed by the coefficient instead of being rebuilt each call.
  // c == 0 never reaches here, so 0 marks an empty cache line.
  if (auto* const kern = gf::detail::active_kernels().gf16_mul_region_add) {
    struct CacheLine {
      std::uint16_t coeff = 0;
      gf::detail::Gf16SplitTables tables;
    };
    thread_local std::array<CacheLine, 64> cache;
    CacheLine& line = cache[c & (cache.size() - 1)];
    if (line.coeff != c) {
      for (unsigned j = 0; j < 4; ++j) {
        for (unsigned v = 0; v < 16; ++v) {
          const std::uint16_t p =
              mul(c, static_cast<std::uint16_t>(v << (4 * j)));
          line.tables.t[2 * j][v] = static_cast<std::uint8_t>(p & 0xFF);
          line.tables.t[2 * j + 1][v] = static_cast<std::uint8_t>(p >> 8);
        }
      }
      line.coeff = c;
    }
    kern(line.tables, dst.data(), src.data(), dst.size());
    return;
  }

  // Scalar path: for x = hi<<8 | lo, c*x = lo_tab[lo] ^ hi_tab[hi]. The
  // 512-entry tables get the same coefficient-keyed caching (fewer lines —
  // they are 8x the size of the split tables).
  struct ScalarLine {
    std::uint16_t coeff = 0;
    std::array<std::uint16_t, 256> lo_tab;
    std::array<std::uint16_t, 256> hi_tab;
  };
  thread_local std::array<ScalarLine, 8> scalar_cache;
  ScalarLine& sl = scalar_cache[c & (scalar_cache.size() - 1)];
  if (sl.coeff != c) {
    for (unsigned i = 0; i < 256; ++i) {
      sl.lo_tab[i] = mul(c, static_cast<std::uint16_t>(i));
      sl.hi_tab[i] = mul(c, static_cast<std::uint16_t>(i << 8));
    }
    sl.coeff = c;
  }
  const auto& lo_tab = sl.lo_tab;
  const auto& hi_tab = sl.hi_tab;

  const std::size_t elements = dst.size() / 2;
  for (std::size_t i = 0; i < elements; ++i) {
    std::uint16_t d, s;
    std::memcpy(&d, dst.data() + 2 * i, 2);
    std::memcpy(&s, src.data() + 2 * i, 2);
    d = static_cast<std::uint16_t>(d ^ lo_tab[s & 0xFF] ^ hi_tab[s >> 8]);
    std::memcpy(dst.data() + 2 * i, &d, 2);
  }
}

}  // namespace rpr::gf16
