// Internal kernel interface for the GF region dispatch layer.
//
// Each instruction-set tier (scalar, SSSE3, AVX2, NEON) provides one
// `Kernels` table of raw-pointer region primitives. The public span API in
// gf_region.h selects a table once at startup (CPUID + the RPR_GF_FORCE
// override) and forwards through it; nothing outside src/gf includes this
// header.
//
// SIMD translation units are compiled with per-file ISA flags
// (-mssse3 / -mavx2), so they must contain *only* code reached through the
// dispatch pointer — no globals with dynamic initializers, no helpers
// callable from generic code. Shared lookup tables therefore live in
// gf_tables.cpp, which is compiled with the base ISA.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rpr::gf::detail {

// Split-nibble tables for one GF(2^8) coefficient c: for a byte
// b = hi<<4 | lo,  c*b = lo_[lo] ^ hi_[hi]. This is the layout `pshufb` /
// `vpshufb` / NEON `tbl` consume directly (16-byte in-register lookup).
struct SplitTable {
  alignas(16) std::uint8_t lo[16];
  alignas(16) std::uint8_t hi[16];
};

/// All 256 coefficient split tables (8 KiB), built once on first use.
const SplitTable* split_tables();

/// Full 256x256 product table (64 KiB), row [c] = c * b for all b; built
/// once on first use. The scalar kernels index one L1-resident row per
/// region pass instead of rebuilding a per-call table (the pre-SIMD code
/// rebuilt 256 entries on every invocation).
const std::uint8_t (*product_tables())[256];

/// 256 8x8 GF(2) bit matrices (2 KiB), one per coefficient, in the operand
/// layout `vgf2p8affineqb` consumes: the affine transform with matrix [c]
/// computes c * b over this field's polynomial 0x11D for every byte lane.
/// (The instruction's fused-reduction sibling `vgf2p8mulb` is hardwired to
/// the AES polynomial 0x11B and is therefore useless here.) Built once on
/// first use.
const std::uint64_t* gfni_matrices();

// Split-nibble tables for one GF(2^16) coefficient, byte-planar layout:
// an element x = n3<<12 | n2<<8 | n1<<4 | n0 satisfies
//   c*x = T0[n0] ^ T1[n1] ^ T2[n2] ^ T3[n3]
// where each Tj holds 16 uint16 products. t[2*j] holds the low bytes of
// Tj and t[2*j+1] the high bytes, so every plane is a 16-byte shuffle
// table. gf65536.cpp builds them on demand and keeps them in a per-thread
// coefficient-keyed cache, so repeated region passes with the same
// coefficient (the coding-loop common case) skip the 64 field multiplies.
struct Gf16SplitTables {
  alignas(16) std::uint8_t t[8][16];
};

struct Kernels {
  const char* name;

  // dst ^= src.
  void (*xor_region)(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t n);

  // dst ^= c * src. Called with c >= 2 only (0/1 short-circuit upstream).
  void (*mul_region_add)(std::uint8_t c, std::uint8_t* dst,
                         const std::uint8_t* src, std::size_t n);

  // Fused multi-source kernel:
  //   accumulate ? dst ^= sum_i coeffs[i] * srcs[i]
  //              : dst  = sum_i coeffs[i] * srcs[i]
  // Writes each destination cache line once per call instead of once per
  // source. Coefficients may include 0 (skipped) and 1 (pure XOR lane).
  void (*mul_region_multi)(const std::uint8_t* coeffs, std::size_t k,
                           const std::uint8_t* const* srcs, std::uint8_t* dst,
                           std::size_t n, bool accumulate);

  // GF(2^16) region multiply-accumulate over little-endian 16-bit elements
  // (n bytes, n even): dst ^= c * src with c described by the split tables.
  // Null on tiers without a vector implementation; gf65536.cpp falls back
  // to its scalar split-table loop.
  void (*gf16_mul_region_add)(const Gf16SplitTables& t, std::uint8_t* dst,
                              const std::uint8_t* src, std::size_t n);
};

/// The table the dispatcher currently routes through (selecting one on the
/// first call). Defined in gf_region.cpp.
const Kernels& active_kernels() noexcept;

const Kernels& scalar_kernels();
#if defined(__x86_64__) || defined(__i386__)
const Kernels& ssse3_kernels();
const Kernels& avx2_kernels();
const Kernels& avx512_kernels();
const Kernels& gfni_kernels();
/// Whether gf_kernels_avx512.cpp was actually built with AVX-512BW/VL+GFNI
/// codegen (the per-file flags require compiler support; without it the TU
/// compiles to stubs and the dispatcher must not offer these tiers).
bool avx512_tu_compiled() noexcept;
#endif
#if defined(__aarch64__)
const Kernels& neon_kernels();
#endif

}  // namespace rpr::gf::detail
