// AVX2 region kernels: vpshufb split-nibble GF(2^8) multiply, 32 bytes per
// lookup pair. Same scheme as the SSSE3 tier with the 16-byte nibble tables
// broadcast to both 128-bit lanes.
//
// This TU is compiled with -mavx2; every function here is reached only
// through the dispatch table after CPUID has verified AVX2 support.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

#include "gf/gf_kernels.h"

namespace rpr::gf::detail {

namespace {

void xor_region_avx2(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    for (std::size_t v = 0; v < 128; v += 32) {
      const __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + v));
      const __m256i b =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + v));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + v),
                          _mm256_xor_si256(a, b));
    }
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

inline __m256i broadcast_table(const std::uint8_t* t16) {
  return _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t16)));
}

// c * v for 32 bytes: two vpshufb lookups on the broadcast nibble tables.
inline __m256i mul32(__m256i v, __m256i lo, __m256i hi, __m256i mask) {
  const __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
  const __m256i h = _mm256_shuffle_epi8(
      hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask));
  return _mm256_xor_si256(l, h);
}

void mul_region_add_avx2(std::uint8_t c, std::uint8_t* dst,
                         const std::uint8_t* src, std::size_t n) {
  const SplitTable& t = split_tables()[c];
  const __m256i lo = broadcast_table(t.lo);
  const __m256i hi = broadcast_table(t.hi);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d0, mul32(s0, lo, hi, mask)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(d1, mul32(s1, lo, hi, mask)));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, mul32(s, lo, hi, mask)));
  }
  if (i < n) {
    const std::uint8_t* row = product_tables()[c];
    for (; i < n; ++i) dst[i] ^= row[src[i]];
  }
}

void mul_region_multi_avx2(const std::uint8_t* coeffs, std::size_t k,
                           const std::uint8_t* const* srcs, std::uint8_t* dst,
                           std::size_t n, bool accumulate) {
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  // 128-byte blocks: accumulate every source in 4 ymm registers, write the
  // destination once per block. Table broadcasts amortize over the block.
  for (; i + 128 <= n; i += 128) {
    __m256i acc[4];
    if (accumulate) {
      for (int v = 0; v < 4; ++v) {
        acc[v] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(dst + i + 32 * std::size_t(v)));
      }
    } else {
      for (auto& a : acc) a = _mm256_setzero_si256();
    }
    for (std::size_t s = 0; s < k; ++s) {
      const std::uint8_t c = coeffs[s];
      if (c == 0) continue;
      const std::uint8_t* in = srcs[s] + i;
      if (c == 1) {  // pure XOR lane
        for (int v = 0; v < 4; ++v) {
          acc[v] = _mm256_xor_si256(
              acc[v], _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                          in + 32 * std::size_t(v))));
        }
        continue;
      }
      const SplitTable& t = split_tables()[c];
      const __m256i lo = broadcast_table(t.lo);
      const __m256i hi = broadcast_table(t.hi);
      for (int v = 0; v < 4; ++v) {
        const __m256i sv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(in + 32 * std::size_t(v)));
        acc[v] = _mm256_xor_si256(acc[v], mul32(sv, lo, hi, mask));
      }
    }
    for (int v = 0; v < 4; ++v) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(dst + i + 32 * std::size_t(v)), acc[v]);
    }
  }
  if (i < n) {
    // Sub-block tail (< 128 bytes): finish each byte before storing it, so
    // a source that aliases dst exactly is read before it is overwritten.
    const std::uint8_t(*prod)[256] = product_tables();
    for (std::size_t j = i; j < n; ++j) {
      std::uint8_t acc = accumulate ? dst[j] : std::uint8_t{0};
      for (std::size_t s = 0; s < k; ++s) {
        if (coeffs[s] != 0) acc ^= prod[coeffs[s]][srcs[s][j]];
      }
      dst[j] = acc;
    }
  }
}

void gf16_mul_region_add_avx2(const Gf16SplitTables& t, std::uint8_t* dst,
                              const std::uint8_t* src, std::size_t n) {
  const __m256i t0l = broadcast_table(t.t[0]);
  const __m256i t0h = broadcast_table(t.t[1]);
  const __m256i t1l = broadcast_table(t.t[2]);
  const __m256i t1h = broadcast_table(t.t[3]);
  const __m256i t2l = broadcast_table(t.t[4]);
  const __m256i t2h = broadcast_table(t.t[5]);
  const __m256i t3l = broadcast_table(t.t[6]);
  const __m256i t3h = broadcast_table(t.t[7]);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  // Per-lane deinterleave of LE uint16 elements; the lane scrambling it
  // introduces is undone symmetrically by the per-lane re-interleave below.
  const __m256i deint = _mm256_broadcastsi128_si256(
      _mm_setr_epi8(0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i p0 = _mm256_shuffle_epi8(s0, deint);
    const __m256i p1 = _mm256_shuffle_epi8(s1, deint);
    const __m256i lob = _mm256_unpacklo_epi64(p0, p1);
    const __m256i hib = _mm256_unpackhi_epi64(p0, p1);
    const __m256i n0 = _mm256_and_si256(lob, mask);
    const __m256i n1 = _mm256_and_si256(_mm256_srli_epi64(lob, 4), mask);
    const __m256i n2 = _mm256_and_si256(hib, mask);
    const __m256i n3 = _mm256_and_si256(_mm256_srli_epi64(hib, 4), mask);
    __m256i outl = _mm256_shuffle_epi8(t0l, n0);
    __m256i outh = _mm256_shuffle_epi8(t0h, n0);
    outl = _mm256_xor_si256(outl, _mm256_shuffle_epi8(t1l, n1));
    outh = _mm256_xor_si256(outh, _mm256_shuffle_epi8(t1h, n1));
    outl = _mm256_xor_si256(outl, _mm256_shuffle_epi8(t2l, n2));
    outh = _mm256_xor_si256(outh, _mm256_shuffle_epi8(t2h, n2));
    outl = _mm256_xor_si256(outl, _mm256_shuffle_epi8(t3l, n3));
    outh = _mm256_xor_si256(outh, _mm256_shuffle_epi8(t3h, n3));
    const __m256i r0 = _mm256_unpacklo_epi8(outl, outh);
    const __m256i r1 = _mm256_unpackhi_epi8(outl, outh);
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d0, r0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(d1, r1));
  }
  for (; i + 2 <= n; i += 2) {
    const unsigned x0 = src[i] & 0xF;
    const unsigned x1 = src[i] >> 4;
    const unsigned x2 = src[i + 1] & 0xF;
    const unsigned x3 = src[i + 1] >> 4;
    dst[i] = static_cast<std::uint8_t>(dst[i] ^ t.t[0][x0] ^ t.t[2][x1] ^
                                       t.t[4][x2] ^ t.t[6][x3]);
    dst[i + 1] = static_cast<std::uint8_t>(dst[i + 1] ^ t.t[1][x0] ^
                                           t.t[3][x1] ^ t.t[5][x2] ^
                                           t.t[7][x3]);
  }
}

}  // namespace

const Kernels& avx2_kernels() {
  static constexpr Kernels k{
      "avx2",          xor_region_avx2,      mul_region_add_avx2,
      mul_region_multi_avx2, gf16_mul_region_add_avx2,
  };
  return k;
}

}  // namespace rpr::gf::detail

#endif  // x86
