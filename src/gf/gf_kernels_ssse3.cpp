// SSSE3 region kernels: split-nibble GF(2^8) multiply via pshufb
// (16 parallel 4-bit table lookups per instruction), the technique used by
// ISA-L, Jerasure/GF-Complete and the YTsaurus erasure codecs.
//
// This TU is compiled with -mssse3; every function here is reached only
// through the dispatch table after the CPU has been verified to support
// SSSE3, so no code from this file may be called directly.
#if defined(__x86_64__) || defined(__i386__)

#include <tmmintrin.h>

#include <cstring>

#include "gf/gf_kernels.h"

namespace rpr::gf::detail {

namespace {

void xor_region_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    for (std::size_t v = 0; v < 64; v += 16) {
      const __m128i a =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + v));
      const __m128i b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + v));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + v),
                       _mm_xor_si128(a, b));
    }
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(a, b));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

// c * v for 16 bytes: two pshufb lookups on the coefficient's nibble tables.
inline __m128i mul16(__m128i v, __m128i lo, __m128i hi, __m128i mask) {
  const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
  const __m128i h =
      _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
  return _mm_xor_si128(l, h);
}

void mul_region_add_ssse3(std::uint8_t c, std::uint8_t* dst,
                          const std::uint8_t* src, std::size_t n) {
  const SplitTable& t = split_tables()[c];
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, mul16(s, lo, hi, mask)));
  }
  if (i < n) {
    const std::uint8_t* row = product_tables()[c];
    for (; i < n; ++i) dst[i] ^= row[src[i]];
  }
}

void mul_region_multi_ssse3(const std::uint8_t* coeffs, std::size_t k,
                            const std::uint8_t* const* srcs, std::uint8_t* dst,
                            std::size_t n, bool accumulate) {
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  // 64-byte blocks: accumulate all sources in registers, store dst once.
  for (; i + 64 <= n; i += 64) {
    __m128i acc[4];
    if (accumulate) {
      for (int v = 0; v < 4; ++v) {
        acc[v] = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(dst + i + 16 * std::size_t(v)));
      }
    } else {
      for (auto& a : acc) a = _mm_setzero_si128();
    }
    for (std::size_t s = 0; s < k; ++s) {
      const std::uint8_t c = coeffs[s];
      if (c == 0) continue;
      const std::uint8_t* in = srcs[s] + i;
      if (c == 1) {  // pure XOR lane: no table lookups needed
        for (int v = 0; v < 4; ++v) {
          acc[v] = _mm_xor_si128(
              acc[v], _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                          in + 16 * std::size_t(v))));
        }
        continue;
      }
      const SplitTable& t = split_tables()[c];
      const __m128i lo =
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
      const __m128i hi =
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
      for (int v = 0; v < 4; ++v) {
        const __m128i sv = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(in + 16 * std::size_t(v)));
        acc[v] = _mm_xor_si128(acc[v], mul16(sv, lo, hi, mask));
      }
    }
    for (int v = 0; v < 4; ++v) {
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(dst + i + 16 * std::size_t(v)), acc[v]);
    }
  }
  if (i < n) {
    // Sub-vector tail (< 64 bytes): finish each byte before storing it, so
    // a source that aliases dst exactly is read before it is overwritten.
    const std::uint8_t(*prod)[256] = product_tables();
    for (std::size_t j = i; j < n; ++j) {
      std::uint8_t acc = accumulate ? dst[j] : std::uint8_t{0};
      for (std::size_t s = 0; s < k; ++s) {
        if (coeffs[s] != 0) acc ^= prod[coeffs[s]][srcs[s][j]];
      }
      dst[j] = acc;
    }
  }
}

void gf16_mul_region_add_ssse3(const Gf16SplitTables& t, std::uint8_t* dst,
                               const std::uint8_t* src, std::size_t n) {
  const __m128i t0l = _mm_load_si128(reinterpret_cast<const __m128i*>(t.t[0]));
  const __m128i t0h = _mm_load_si128(reinterpret_cast<const __m128i*>(t.t[1]));
  const __m128i t1l = _mm_load_si128(reinterpret_cast<const __m128i*>(t.t[2]));
  const __m128i t1h = _mm_load_si128(reinterpret_cast<const __m128i*>(t.t[3]));
  const __m128i t2l = _mm_load_si128(reinterpret_cast<const __m128i*>(t.t[4]));
  const __m128i t2h = _mm_load_si128(reinterpret_cast<const __m128i*>(t.t[5]));
  const __m128i t3l = _mm_load_si128(reinterpret_cast<const __m128i*>(t.t[6]));
  const __m128i t3h = _mm_load_si128(reinterpret_cast<const __m128i*>(t.t[7]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  // Deinterleave mask: gather the low bytes of 8 LE uint16 elements into
  // the low half and the high bytes into the high half.
  const __m128i deint = _mm_setr_epi8(0, 2, 4, 6, 8, 10, 12, 14,  //
                                      1, 3, 5, 7, 9, 11, 13, 15);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i s0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i s1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
    const __m128i p0 = _mm_shuffle_epi8(s0, deint);
    const __m128i p1 = _mm_shuffle_epi8(s1, deint);
    const __m128i lob = _mm_unpacklo_epi64(p0, p1);  // low bytes, 16 elems
    const __m128i hib = _mm_unpackhi_epi64(p0, p1);  // high bytes
    const __m128i n0 = _mm_and_si128(lob, mask);
    const __m128i n1 = _mm_and_si128(_mm_srli_epi64(lob, 4), mask);
    const __m128i n2 = _mm_and_si128(hib, mask);
    const __m128i n3 = _mm_and_si128(_mm_srli_epi64(hib, 4), mask);
    __m128i outl = _mm_shuffle_epi8(t0l, n0);
    __m128i outh = _mm_shuffle_epi8(t0h, n0);
    outl = _mm_xor_si128(outl, _mm_shuffle_epi8(t1l, n1));
    outh = _mm_xor_si128(outh, _mm_shuffle_epi8(t1h, n1));
    outl = _mm_xor_si128(outl, _mm_shuffle_epi8(t2l, n2));
    outh = _mm_xor_si128(outh, _mm_shuffle_epi8(t2h, n2));
    outl = _mm_xor_si128(outl, _mm_shuffle_epi8(t3l, n3));
    outh = _mm_xor_si128(outh, _mm_shuffle_epi8(t3h, n3));
    const __m128i r0 = _mm_unpacklo_epi8(outl, outh);  // elements 0..7
    const __m128i r1 = _mm_unpackhi_epi8(outl, outh);  // elements 8..15
    const __m128i d0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i d1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d0, r0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16),
                     _mm_xor_si128(d1, r1));
  }
  // Element-wise tail (n is even, so whole elements remain).
  for (; i + 2 <= n; i += 2) {
    const unsigned x0 = src[i] & 0xF;
    const unsigned x1 = src[i] >> 4;
    const unsigned x2 = src[i + 1] & 0xF;
    const unsigned x3 = src[i + 1] >> 4;
    dst[i] = static_cast<std::uint8_t>(dst[i] ^ t.t[0][x0] ^ t.t[2][x1] ^
                                       t.t[4][x2] ^ t.t[6][x3]);
    dst[i + 1] = static_cast<std::uint8_t>(dst[i + 1] ^ t.t[1][x0] ^
                                           t.t[3][x1] ^ t.t[5][x2] ^
                                           t.t[7][x3]);
  }
}

}  // namespace

const Kernels& ssse3_kernels() {
  static constexpr Kernels k{
      "ssse3",          xor_region_ssse3,      mul_region_add_ssse3,
      mul_region_multi_ssse3, gf16_mul_region_add_ssse3,
  };
  return k;
}

}  // namespace rpr::gf::detail

#endif  // x86
