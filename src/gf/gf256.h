// GF(2^8) scalar arithmetic.
//
// This is the finite field underlying Reed-Solomon coding (paper §2.1.2).
// We use the standard polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same
// field the Jerasure library (the paper's substrate) and ISA-L use for w = 8.
//
// Key property the paper's repair scheme leans on: addition in GF(2^w) is
// XOR, so any linear combination of blocks can be accumulated piecewise and
// in any grouping ("partial decoding", eq. 4/9).
//
// All tables are generated at compile time; there is no runtime init order
// to worry about.
#pragma once

#include <array>
#include <cstdint>

namespace rpr::gf {

inline constexpr unsigned kPrimPoly = 0x11D;  // x^8+x^4+x^3+x^2+1
inline constexpr int kFieldSize = 256;
inline constexpr int kGroupOrder = 255;  // order of the multiplicative group

namespace detail {

struct Tables {
  // exp_[i] = g^i for generator g = 2; doubled length so that
  // mul(a,b) = exp_[log_[a] + log_[b]] needs no modular reduction.
  std::array<std::uint8_t, 2 * kGroupOrder> exp_{};
  std::array<std::uint8_t, kFieldSize> log_{};
  std::array<std::uint8_t, kFieldSize> inv_{};
};

constexpr Tables make_tables() {
  Tables t{};
  unsigned x = 1;
  for (int i = 0; i < kGroupOrder; ++i) {
    t.exp_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    t.exp_[static_cast<std::size_t>(i + kGroupOrder)] =
        static_cast<std::uint8_t>(x);
    t.log_[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100u) x ^= kPrimPoly;
  }
  t.log_[0] = 0;  // log(0) is undefined; callers must branch on zero.
  t.inv_[0] = 0;  // inverse of 0 is undefined; kept 0 defensively.
  for (int a = 1; a < kFieldSize; ++a) {
    const int l = kGroupOrder - t.log_[static_cast<std::size_t>(a)];
    t.inv_[static_cast<std::size_t>(a)] =
        t.exp_[static_cast<std::size_t>(l % kGroupOrder)];
  }
  return t;
}

inline constexpr Tables kTables = make_tables();

}  // namespace detail

/// a + b and a - b in GF(2^8) are both XOR.
constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) noexcept {
  return a ^ b;
}
constexpr std::uint8_t sub(std::uint8_t a, std::uint8_t b) noexcept {
  return a ^ b;
}

constexpr std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  return detail::kTables.exp_[static_cast<std::size_t>(
      detail::kTables.log_[a] + detail::kTables.log_[b])];
}

/// Multiplicative inverse. Precondition: a != 0.
constexpr std::uint8_t inv(std::uint8_t a) noexcept {
  return detail::kTables.inv_[a];
}

/// a / b. Precondition: b != 0.
constexpr std::uint8_t div(std::uint8_t a, std::uint8_t b) noexcept {
  return mul(a, inv(b));
}

/// a^e (e >= 0), with 0^0 defined as 1 for Vandermonde construction.
constexpr std::uint8_t pow(std::uint8_t a, unsigned e) noexcept {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const unsigned l =
      (static_cast<unsigned>(detail::kTables.log_[a]) * e) % kGroupOrder;
  return detail::kTables.exp_[l];
}

/// Generator element used for the exp/log tables.
inline constexpr std::uint8_t kGenerator = 2;

/// exp table lookup: g^i, i in [0, 255).
constexpr std::uint8_t exp(unsigned i) noexcept {
  return detail::kTables.exp_[i % kGroupOrder];
}

/// log table lookup. Precondition: a != 0.
constexpr std::uint8_t log(std::uint8_t a) noexcept {
  return detail::kTables.log_[a];
}

}  // namespace rpr::gf
