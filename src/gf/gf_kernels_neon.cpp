// AArch64 NEON region kernels: split-nibble GF(2^8) multiply via the `tbl`
// 16-byte table-lookup instruction — the NEON analogue of pshufb. AdvSIMD
// is architecturally mandatory on AArch64, so this tier needs no runtime
// feature probe beyond the target check.
#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstring>

#include "gf/gf_kernels.h"

namespace rpr::gf::detail {

namespace {

void xor_region_neon(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    for (std::size_t v = 0; v < 64; v += 16) {
      vst1q_u8(dst + i + v,
               veorq_u8(vld1q_u8(dst + i + v), vld1q_u8(src + i + v)));
    }
  }
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

// c * v for 16 bytes: two tbl lookups on the coefficient's nibble tables.
inline uint8x16_t mul16(uint8x16_t v, uint8x16_t lo, uint8x16_t hi,
                        uint8x16_t mask) {
  const uint8x16_t l = vqtbl1q_u8(lo, vandq_u8(v, mask));
  const uint8x16_t h = vqtbl1q_u8(hi, vshrq_n_u8(v, 4));
  return veorq_u8(l, h);
}

void mul_region_add_neon(std::uint8_t c, std::uint8_t* dst,
                         const std::uint8_t* src, std::size_t n) {
  const SplitTable& t = split_tables()[c];
  const uint8x16_t lo = vld1q_u8(t.lo);
  const uint8x16_t hi = vld1q_u8(t.hi);
  const uint8x16_t mask = vdupq_n_u8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t s = vld1q_u8(src + i);
    const uint8x16_t d = vld1q_u8(dst + i);
    vst1q_u8(dst + i, veorq_u8(d, mul16(s, lo, hi, mask)));
  }
  if (i < n) {
    const std::uint8_t* row = product_tables()[c];
    for (; i < n; ++i) dst[i] ^= row[src[i]];
  }
}

void mul_region_multi_neon(const std::uint8_t* coeffs, std::size_t k,
                           const std::uint8_t* const* srcs, std::uint8_t* dst,
                           std::size_t n, bool accumulate) {
  const uint8x16_t mask = vdupq_n_u8(0x0F);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    uint8x16_t acc[4];
    for (int v = 0; v < 4; ++v) {
      acc[v] = accumulate ? vld1q_u8(dst + i + 16 * std::size_t(v))
                          : vdupq_n_u8(0);
    }
    for (std::size_t s = 0; s < k; ++s) {
      const std::uint8_t c = coeffs[s];
      if (c == 0) continue;
      const std::uint8_t* in = srcs[s] + i;
      if (c == 1) {
        for (int v = 0; v < 4; ++v) {
          acc[v] = veorq_u8(acc[v], vld1q_u8(in + 16 * std::size_t(v)));
        }
        continue;
      }
      const SplitTable& t = split_tables()[c];
      const uint8x16_t lo = vld1q_u8(t.lo);
      const uint8x16_t hi = vld1q_u8(t.hi);
      for (int v = 0; v < 4; ++v) {
        const uint8x16_t sv = vld1q_u8(in + 16 * std::size_t(v));
        acc[v] = veorq_u8(acc[v], mul16(sv, lo, hi, mask));
      }
    }
    for (int v = 0; v < 4; ++v) {
      vst1q_u8(dst + i + 16 * std::size_t(v), acc[v]);
    }
  }
  if (i < n) {
    // Finish each tail byte before storing it, so a source that aliases
    // dst exactly is read before it is overwritten.
    const std::uint8_t(*prod)[256] = product_tables();
    for (std::size_t j = i; j < n; ++j) {
      std::uint8_t acc = accumulate ? dst[j] : std::uint8_t{0};
      for (std::size_t s = 0; s < k; ++s) {
        if (coeffs[s] != 0) acc ^= prod[coeffs[s]][srcs[s][j]];
      }
      dst[j] = acc;
    }
  }
}

void gf16_mul_region_add_neon(const Gf16SplitTables& t, std::uint8_t* dst,
                              const std::uint8_t* src, std::size_t n) {
  const uint8x16_t t0l = vld1q_u8(t.t[0]);
  const uint8x16_t t0h = vld1q_u8(t.t[1]);
  const uint8x16_t t1l = vld1q_u8(t.t[2]);
  const uint8x16_t t1h = vld1q_u8(t.t[3]);
  const uint8x16_t t2l = vld1q_u8(t.t[4]);
  const uint8x16_t t2h = vld1q_u8(t.t[5]);
  const uint8x16_t t3l = vld1q_u8(t.t[6]);
  const uint8x16_t t3h = vld1q_u8(t.t[7]);
  const uint8x16_t mask = vdupq_n_u8(0x0F);
  std::size_t i = 0;
  // vld2q deinterleaves 16 LE uint16 elements into low-byte / high-byte
  // planes; vst2q re-interleaves on the way out.
  for (; i + 32 <= n; i += 32) {
    const uint8x16x2_t s = vld2q_u8(src + i);
    const uint8x16_t n0 = vandq_u8(s.val[0], mask);
    const uint8x16_t n1 = vshrq_n_u8(s.val[0], 4);
    const uint8x16_t n2 = vandq_u8(s.val[1], mask);
    const uint8x16_t n3 = vshrq_n_u8(s.val[1], 4);
    uint8x16_t outl = vqtbl1q_u8(t0l, n0);
    uint8x16_t outh = vqtbl1q_u8(t0h, n0);
    outl = veorq_u8(outl, vqtbl1q_u8(t1l, n1));
    outh = veorq_u8(outh, vqtbl1q_u8(t1h, n1));
    outl = veorq_u8(outl, vqtbl1q_u8(t2l, n2));
    outh = veorq_u8(outh, vqtbl1q_u8(t2h, n2));
    outl = veorq_u8(outl, vqtbl1q_u8(t3l, n3));
    outh = veorq_u8(outh, vqtbl1q_u8(t3h, n3));
    uint8x16x2_t d = vld2q_u8(dst + i);
    d.val[0] = veorq_u8(d.val[0], outl);
    d.val[1] = veorq_u8(d.val[1], outh);
    vst2q_u8(dst + i, d);
  }
  for (; i + 2 <= n; i += 2) {
    const unsigned x0 = src[i] & 0xF;
    const unsigned x1 = src[i] >> 4;
    const unsigned x2 = src[i + 1] & 0xF;
    const unsigned x3 = src[i + 1] >> 4;
    dst[i] = static_cast<std::uint8_t>(dst[i] ^ t.t[0][x0] ^ t.t[2][x1] ^
                                       t.t[4][x2] ^ t.t[6][x3]);
    dst[i + 1] = static_cast<std::uint8_t>(dst[i + 1] ^ t.t[1][x0] ^
                                           t.t[3][x1] ^ t.t[5][x2] ^
                                           t.t[7][x3]);
  }
}

}  // namespace

const Kernels& neon_kernels() {
  static constexpr Kernels k{
      "neon",          xor_region_neon,      mul_region_add_neon,
      mul_region_multi_neon, gf16_mul_region_add_neon,
  };
  return k;
}

}  // namespace rpr::gf::detail

#endif  // __aarch64__
