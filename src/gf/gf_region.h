// Bulk (region) operations over GF(2^8) byte buffers.
//
// These are the hot kernels of the whole system: encoding, decoding and
// partial decoding are all of the form  dst ^= c * src  over block-sized
// buffers. The implementation is runtime-dispatched across instruction-set
// tiers, selected once at startup from CPUID (and overridable with the
// RPR_GF_FORCE environment variable or set_tier()):
//
//  * scalar — word-wide XOR plus cached 256-byte product-table rows; the
//    portable fallback and the reference cost model.
//  * ssse3 / avx2 — split-nibble `pshufb` / `vpshufb` kernels: each 16-byte
//    shuffle performs 16 parallel 4-bit table lookups, the technique used
//    by ISA-L, GF-Complete and production erasure codecs.
//  * neon — AArch64 `tbl`, the same scheme on ARM.
//  * avx512 — the split-nibble scheme on 64-byte vectors (`vpshufb` on zmm).
//  * gfni — `vgf2p8affineqb`: one affine instruction multiplies 64 bytes by
//    an arbitrary coefficient (as an 8x8 GF(2) bit matrix), replacing the
//    whole split-nibble dance. The instruction's built-in reduction is tied
//    to the AES polynomial 0x11B, not this field's 0x11D, so the affine
//    form (matrix per coefficient, 2 KiB table) is the usable one.
//
// Beyond the single-source kernels there are fused multi-source forms
// (`mul_region_add_multi`, `encode_regions`) that keep the destination in
// registers across all sources, writing each output cache line once per
// stripe instead of once per source — the shape ISA-L's ec_encode_data
// exposes, and what RS encode / repair aggregation call.
//
// The measured speed gap between the XOR path and the multiply path is what
// the paper reports as "optimized decoding ~2.5 s vs traditional decoding
// ~20 s" on EC2; the micro_decode benchmark regenerates that comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace rpr::gf {

/// Instruction-set tiers of the region kernels, in increasing preference.
enum class SimdTier : int {
  kScalar = 0,
  kSsse3 = 1,
  kAvx2 = 2,
  kNeon = 3,
  kAvx512 = 4,
  kGfni = 5,
};

/// The tier region operations currently dispatch to. First call selects it:
/// the best CPU-supported tier, unless RPR_GF_FORCE names another.
SimdTier active_tier() noexcept;

/// Best tier this CPU supports.
SimdTier best_tier() noexcept;

/// Whether this CPU can run the given tier (kScalar is always true).
bool tier_supported(SimdTier tier) noexcept;

/// All CPU-supported tiers, ascending (always starts with kScalar).
std::vector<SimdTier> supported_tiers();

/// Force dispatch to a tier (tests/benchmarks). Returns false — leaving the
/// active tier unchanged — if the CPU does not support it. Takes effect for
/// subsequent region calls; do not race it against in-flight kernels you
/// care to attribute to a specific tier.
bool set_tier(SimdTier tier) noexcept;

/// "scalar", "ssse3", "avx2", "neon", "avx512" or "gfni".
const char* tier_name(SimdTier tier) noexcept;

/// Parse a tier spec as accepted by RPR_GF_FORCE.
std::optional<SimdTier> parse_tier(std::string_view spec) noexcept;

/// dst ^= src, element-wise. Sizes must match.
void xor_region(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src);

/// dst = c * src, element-wise (dst and src may alias exactly).
void mul_region(std::uint8_t c, std::span<std::uint8_t> dst,
                std::span<const std::uint8_t> src);

/// dst ^= c * src, element-wise. The fundamental encode/decode kernel.
/// c == 0 is a no-op; c == 1 degenerates to xor_region.
void mul_region_add(std::uint8_t c, std::span<std::uint8_t> dst,
                    std::span<const std::uint8_t> src);

/// Same as mul_region_add but always takes the multiply path, even for
/// c == 1 (c == 0 still short-circuits, matching how a generic decoder skips
/// zero entries of the decoding matrix). This is the cost model of an
/// *unoptimized* decode function — the "traditional decoding function" whose
/// ~4x slowdown the paper measures on EC2 (§5.2.1) — and is what the
/// threaded testbed charges for matrix-path decodes.
void mul_region_add_general(std::uint8_t c, std::span<std::uint8_t> dst,
                            std::span<const std::uint8_t> src);

/// Fused multi-source accumulate: dst ^= sum_i coeffs[i] * srcs[i], with
/// every source region coeffs.size() pointers long and dst.size() bytes.
/// Writes each destination cache line once instead of once per source.
/// Zero coefficients are skipped; unit coefficients take the XOR lane.
/// Sources must not alias dst (the destination is revisited per chunk, in
/// tier-specific order, while sources are still being read).
void mul_region_add_multi(std::span<const std::uint8_t> coeffs,
                          const std::uint8_t* const* srcs,
                          std::span<std::uint8_t> dst);

/// Fused matrix application (the ISA-L ec_encode_data shape):
///   dsts[r] = sum_j matrix[r*cols + j] * srcs[j]   for r in [0, rows)
/// over `len`-byte regions. Destinations are overwritten, not accumulated,
/// and must not alias any source.
void encode_regions(std::span<const std::uint8_t> matrix, std::size_t rows,
                    std::size_t cols, const std::uint8_t* const* srcs,
                    std::uint8_t* const* dsts, std::size_t len);

/// Reference (scalar, obviously-correct) versions used by the test suite to
/// validate the optimized kernels.
namespace ref {
void xor_region(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src);
void mul_region_add(std::uint8_t c, std::span<std::uint8_t> dst,
                    std::span<const std::uint8_t> src);
void mul_region_add_multi(std::span<const std::uint8_t> coeffs,
                          const std::uint8_t* const* srcs,
                          std::span<std::uint8_t> dst);
}  // namespace ref

}  // namespace rpr::gf
