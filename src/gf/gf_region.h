// Bulk (region) operations over GF(2^8) byte buffers.
//
// These are the hot kernels of the whole system: encoding, decoding and
// partial decoding are all of the form  dst ^= c * src  over block-sized
// buffers. Two paths exist:
//
//  * XOR path (`xor_region`): word-wide XOR, used when the coefficient is 1.
//    This is the fast path that RPR's pre-placement optimization (§3.3)
//    unlocks: repairing with {all other data blocks, P0} needs only XORs.
//  * Multiply path (`mul_region_add`): per-coefficient 4-bit split tables
//    (two 16-entry tables combined into a 256-entry lookup pair), the same
//    technique vectorized erasure coders use, implemented portably.
//
// The measured speed gap between the two paths is what the paper reports as
// "optimized decoding ~2.5 s vs traditional decoding ~20 s" on EC2; the
// micro_decode benchmark regenerates that comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace rpr::gf {

/// dst ^= src, element-wise. Sizes must match.
void xor_region(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src);

/// dst = c * src, element-wise (dst and src may alias exactly).
void mul_region(std::uint8_t c, std::span<std::uint8_t> dst,
                std::span<const std::uint8_t> src);

/// dst ^= c * src, element-wise. The fundamental encode/decode kernel.
/// c == 0 is a no-op; c == 1 degenerates to xor_region.
void mul_region_add(std::uint8_t c, std::span<std::uint8_t> dst,
                    std::span<const std::uint8_t> src);

/// Same as mul_region_add but always takes the table-lookup path, even for
/// c == 1 (c == 0 still short-circuits, matching how a generic decoder skips
/// zero entries of the decoding matrix). This is the cost model of an
/// *unoptimized* decode function — the "traditional decoding function" whose
/// ~4x slowdown the paper measures on EC2 (§5.2.1) — and is what the
/// threaded testbed charges for matrix-path decodes.
void mul_region_add_general(std::uint8_t c, std::span<std::uint8_t> dst,
                            std::span<const std::uint8_t> src);

/// Reference (scalar, obviously-correct) versions used by the test suite to
/// validate the optimized kernels.
namespace ref {
void xor_region(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src);
void mul_region_add(std::uint8_t c, std::span<std::uint8_t> dst,
                    std::span<const std::uint8_t> src);
}  // namespace ref

}  // namespace rpr::gf
