// Shared lookup tables for the GF region kernels.
//
// Lives in a base-ISA translation unit so the SIMD kernel files (compiled
// with -mssse3 / -mavx2) contain nothing but dispatch-reached code. Both
// tables are built once behind a thread-safe function-local static; at
// 8 KiB (split) + 64 KiB (product) they are a fixed cost paid on first
// region operation, not per call.
#include "gf/gf_kernels.h"

#include "gf/gf256.h"

namespace rpr::gf::detail {

namespace {

struct AllTables {
  SplitTable split[256];
  std::uint8_t product[256][256];
};

AllTables build() {
  AllTables t;
  for (unsigned c = 0; c < 256; ++c) {
    auto cc = static_cast<std::uint8_t>(c);
    for (unsigned i = 0; i < 16; ++i) {
      t.split[c].lo[i] = mul(cc, static_cast<std::uint8_t>(i));
      t.split[c].hi[i] = mul(cc, static_cast<std::uint8_t>(i << 4));
    }
    for (unsigned b = 0; b < 256; ++b) {
      t.product[c][b] = static_cast<std::uint8_t>(t.split[c].lo[b & 0xF] ^
                                                  t.split[c].hi[b >> 4]);
    }
  }
  return t;
}

const AllTables& tables() {
  static const AllTables t = build();
  return t;
}

}  // namespace

const SplitTable* split_tables() { return tables().split; }

const std::uint8_t (*product_tables())[256] { return tables().product; }

}  // namespace rpr::gf::detail
