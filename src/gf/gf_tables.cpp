// Shared lookup tables for the GF region kernels.
//
// Lives in a base-ISA translation unit so the SIMD kernel files (compiled
// with -mssse3 / -mavx2 / -mavx512bw) contain nothing but dispatch-reached
// code. All tables are built once behind a thread-safe function-local
// static; at 8 KiB (split) + 64 KiB (product) + 2 KiB (GFNI affine
// matrices) they are a fixed cost paid on first region operation, not per
// call.
#include "gf/gf_kernels.h"

#include "gf/gf256.h"

namespace rpr::gf::detail {

namespace {

struct AllTables {
  SplitTable split[256];
  std::uint8_t product[256][256];
  std::uint64_t affine[256];
};

// The 8x8 bit matrix M_c with M_c * b = c * b (GF(2^8)/0x11D), laid out for
// vgf2p8affineqb. Intel's semantics: result bit i of a lane is
// parity(matrix_byte[7-i] AND src_byte), so matrix byte (7-i), bit j must
// hold bit i of c * 2^j — column j of M_c is the product c * x^j.
std::uint64_t affine_matrix(std::uint8_t c) {
  std::uint8_t bytes[8] = {};
  for (unsigned j = 0; j < 8; ++j) {
    const std::uint8_t p = mul(c, static_cast<std::uint8_t>(1u << j));
    for (unsigned i = 0; i < 8; ++i) {
      if ((p >> i) & 1u) bytes[7 - i] |= static_cast<std::uint8_t>(1u << j);
    }
  }
  std::uint64_t m = 0;
  for (unsigned k = 0; k < 8; ++k) m |= std::uint64_t{bytes[k]} << (8 * k);
  return m;
}

AllTables build() {
  AllTables t;
  for (unsigned c = 0; c < 256; ++c) {
    auto cc = static_cast<std::uint8_t>(c);
    for (unsigned i = 0; i < 16; ++i) {
      t.split[c].lo[i] = mul(cc, static_cast<std::uint8_t>(i));
      t.split[c].hi[i] = mul(cc, static_cast<std::uint8_t>(i << 4));
    }
    for (unsigned b = 0; b < 256; ++b) {
      t.product[c][b] = static_cast<std::uint8_t>(t.split[c].lo[b & 0xF] ^
                                                  t.split[c].hi[b >> 4]);
    }
    t.affine[c] = affine_matrix(cc);
  }
  return t;
}

const AllTables& tables() {
  static const AllTables t = build();
  return t;
}

}  // namespace

const SplitTable* split_tables() { return tables().split; }

const std::uint8_t (*product_tables())[256] { return tables().product; }

const std::uint64_t* gfni_matrices() { return tables().affine; }

}  // namespace rpr::gf::detail
