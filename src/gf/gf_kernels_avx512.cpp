// AVX-512 region kernels, two tiers in one TU:
//
//  * avx512 — the split-nibble scheme on 64-byte vectors: `vpshufb` on zmm
//    has the same per-128-bit-lane semantics as the xmm/ymm forms, so the
//    AVX2 kernels port directly with the nibble tables broadcast to all
//    four lanes (`vbroadcasti32x4`). This is the fallback for CPUs with
//    AVX-512BW but no GFNI.
//  * gfni — `vgf2p8affineqb`: one instruction multiplies 64 source bytes by
//    an arbitrary GF(2^8) coefficient expressed as an 8x8 bit matrix
//    (gfni_matrices(), built in gf_tables.cpp for this field's polynomial
//    0x11D). Two shuffles, two ANDs and a shift collapse into a single
//    affine op, roughly tripling per-vector multiply throughput.
//
// This TU is compiled with -mavx512f/-mavx512bw/-mavx512vl/-mgfni; every
// function is reached only through the dispatch table after CPUID has
// verified support. If the compiler is too old for those flags, the
// fallback branch at the bottom compiles stubs and reports
// avx512_tu_compiled() == false so the dispatcher never offers the tiers.
#if defined(__x86_64__) || defined(__i386__)

#include "gf/gf_kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) && \
    defined(__GFNI__)

#include <immintrin.h>

namespace rpr::gf::detail {

namespace {

// ---- shared -----------------------------------------------------------

void xor_region_avx512(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 256 <= n; i += 256) {
    for (std::size_t v = 0; v < 256; v += 64) {
      const __m512i a =
          _mm512_loadu_si512(reinterpret_cast<const void*>(dst + i + v));
      const __m512i b =
          _mm512_loadu_si512(reinterpret_cast<const void*>(src + i + v));
      _mm512_storeu_si512(reinterpret_cast<void*>(dst + i + v),
                          _mm512_xor_si512(a, b));
    }
  }
  for (; i + 64 <= n; i += 64) {
    const __m512i a =
        _mm512_loadu_si512(reinterpret_cast<const void*>(dst + i));
    const __m512i b =
        _mm512_loadu_si512(reinterpret_cast<const void*>(src + i));
    _mm512_storeu_si512(reinterpret_cast<void*>(dst + i),
                        _mm512_xor_si512(a, b));
  }
  if (i < n) {
    // Masked epilogue: one partial vector instead of a byte loop.
    const __mmask64 m = _cvtu64_mask64(~std::uint64_t{0} >> (64 - (n - i)));
    const __m512i a = _mm512_maskz_loadu_epi8(m, dst + i);
    const __m512i b = _mm512_maskz_loadu_epi8(m, src + i);
    _mm512_mask_storeu_epi8(dst + i, m, _mm512_xor_si512(a, b));
  }
}

// ---- avx512 tier: split-nibble vpshufb on zmm -------------------------

inline __m512i broadcast_table(const std::uint8_t* t16) {
  return _mm512_broadcast_i32x4(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t16)));
}

// c * v for 64 bytes: two vpshufb lookups on the broadcast nibble tables.
inline __m512i mul64(__m512i v, __m512i lo, __m512i hi, __m512i mask) {
  const __m512i l = _mm512_shuffle_epi8(lo, _mm512_and_si512(v, mask));
  const __m512i h = _mm512_shuffle_epi8(
      hi, _mm512_and_si512(_mm512_srli_epi64(v, 4), mask));
  return _mm512_xor_si512(l, h);
}

void mul_region_add_avx512(std::uint8_t c, std::uint8_t* dst,
                           const std::uint8_t* src, std::size_t n) {
  const SplitTable& t = split_tables()[c];
  const __m512i lo = broadcast_table(t.lo);
  const __m512i hi = broadcast_table(t.hi);
  const __m512i mask = _mm512_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    const __m512i s0 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(src + i));
    const __m512i s1 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(src + i + 64));
    const __m512i d0 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(dst + i));
    const __m512i d1 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(dst + i + 64));
    _mm512_storeu_si512(reinterpret_cast<void*>(dst + i),
                        _mm512_xor_si512(d0, mul64(s0, lo, hi, mask)));
    _mm512_storeu_si512(reinterpret_cast<void*>(dst + i + 64),
                        _mm512_xor_si512(d1, mul64(s1, lo, hi, mask)));
  }
  for (; i + 64 <= n; i += 64) {
    const __m512i s =
        _mm512_loadu_si512(reinterpret_cast<const void*>(src + i));
    const __m512i d =
        _mm512_loadu_si512(reinterpret_cast<const void*>(dst + i));
    _mm512_storeu_si512(reinterpret_cast<void*>(dst + i),
                        _mm512_xor_si512(d, mul64(s, lo, hi, mask)));
  }
  if (i < n) {
    const std::uint8_t* row = product_tables()[c];
    for (; i < n; ++i) dst[i] ^= row[src[i]];
  }
}

void mul_region_multi_avx512(const std::uint8_t* coeffs, std::size_t k,
                             const std::uint8_t* const* srcs,
                             std::uint8_t* dst, std::size_t n,
                             bool accumulate) {
  const __m512i mask = _mm512_set1_epi8(0x0F);
  std::size_t i = 0;
  // 256-byte blocks: accumulate every source in 4 zmm registers, write the
  // destination once per block. Table broadcasts amortize over the block.
  for (; i + 256 <= n; i += 256) {
    __m512i acc[4];
    if (accumulate) {
      for (int v = 0; v < 4; ++v) {
        acc[v] = _mm512_loadu_si512(
            reinterpret_cast<const void*>(dst + i + 64 * std::size_t(v)));
      }
    } else {
      for (auto& a : acc) a = _mm512_setzero_si512();
    }
    for (std::size_t s = 0; s < k; ++s) {
      const std::uint8_t c = coeffs[s];
      if (c == 0) continue;
      const std::uint8_t* in = srcs[s] + i;
      if (c == 1) {  // pure XOR lane
        for (int v = 0; v < 4; ++v) {
          acc[v] = _mm512_xor_si512(
              acc[v], _mm512_loadu_si512(reinterpret_cast<const void*>(
                          in + 64 * std::size_t(v))));
        }
        continue;
      }
      const SplitTable& t = split_tables()[c];
      const __m512i lo = broadcast_table(t.lo);
      const __m512i hi = broadcast_table(t.hi);
      for (int v = 0; v < 4; ++v) {
        const __m512i sv = _mm512_loadu_si512(
            reinterpret_cast<const void*>(in + 64 * std::size_t(v)));
        acc[v] = _mm512_xor_si512(acc[v], mul64(sv, lo, hi, mask));
      }
    }
    for (int v = 0; v < 4; ++v) {
      _mm512_storeu_si512(
          reinterpret_cast<void*>(dst + i + 64 * std::size_t(v)), acc[v]);
    }
  }
  if (i < n) {
    // Sub-block tail (< 256 bytes): finish each byte before storing it, so
    // a source that aliases dst exactly is read before it is overwritten.
    const std::uint8_t(*prod)[256] = product_tables();
    for (std::size_t j = i; j < n; ++j) {
      std::uint8_t acc = accumulate ? dst[j] : std::uint8_t{0};
      for (std::size_t s = 0; s < k; ++s) {
        if (coeffs[s] != 0) acc ^= prod[coeffs[s]][srcs[s][j]];
      }
      dst[j] = acc;
    }
  }
}

// GF(2^16) byte-planar kernel: straight port of the AVX2 version. vpshufb,
// vpunpck{l,h} and the deinterleave shuffle all operate per 128-bit lane on
// zmm exactly as on ymm, and the deinterleave/re-interleave pair is
// symmetric, so the lane scrambling cancels just like in the AVX2 tier.
void gf16_mul_region_add_avx512(const Gf16SplitTables& t, std::uint8_t* dst,
                                const std::uint8_t* src, std::size_t n) {
  const __m512i t0l = broadcast_table(t.t[0]);
  const __m512i t0h = broadcast_table(t.t[1]);
  const __m512i t1l = broadcast_table(t.t[2]);
  const __m512i t1h = broadcast_table(t.t[3]);
  const __m512i t2l = broadcast_table(t.t[4]);
  const __m512i t2h = broadcast_table(t.t[5]);
  const __m512i t3l = broadcast_table(t.t[6]);
  const __m512i t3h = broadcast_table(t.t[7]);
  const __m512i mask = _mm512_set1_epi8(0x0F);
  const __m512i deint = _mm512_broadcast_i32x4(
      _mm_setr_epi8(0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15));
  // One 128-byte block: s0/s1 in, the byte-planar products r0/r1 out, with
  // output byte j corresponding to input byte j.
  const auto block = [&](__m512i s0, __m512i s1, __m512i& r0, __m512i& r1) {
    const __m512i p0 = _mm512_shuffle_epi8(s0, deint);
    const __m512i p1 = _mm512_shuffle_epi8(s1, deint);
    const __m512i lob = _mm512_unpacklo_epi64(p0, p1);
    const __m512i hib = _mm512_unpackhi_epi64(p0, p1);
    const __m512i n0 = _mm512_and_si512(lob, mask);
    const __m512i n1 = _mm512_and_si512(_mm512_srli_epi64(lob, 4), mask);
    const __m512i n2 = _mm512_and_si512(hib, mask);
    const __m512i n3 = _mm512_and_si512(_mm512_srli_epi64(hib, 4), mask);
    __m512i outl = _mm512_shuffle_epi8(t0l, n0);
    __m512i outh = _mm512_shuffle_epi8(t0h, n0);
    outl = _mm512_xor_si512(outl, _mm512_shuffle_epi8(t1l, n1));
    outh = _mm512_xor_si512(outh, _mm512_shuffle_epi8(t1h, n1));
    outl = _mm512_xor_si512(outl, _mm512_shuffle_epi8(t2l, n2));
    outh = _mm512_xor_si512(outh, _mm512_shuffle_epi8(t2h, n2));
    outl = _mm512_xor_si512(outl, _mm512_shuffle_epi8(t3l, n3));
    outh = _mm512_xor_si512(outh, _mm512_shuffle_epi8(t3h, n3));
    r0 = _mm512_unpacklo_epi8(outl, outh);
    r1 = _mm512_unpackhi_epi8(outl, outh);
  };
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    __m512i r0, r1;
    block(_mm512_loadu_si512(reinterpret_cast<const void*>(src + i)),
          _mm512_loadu_si512(reinterpret_cast<const void*>(src + i + 64)),
          r0, r1);
    const __m512i d0 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(dst + i));
    const __m512i d1 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(dst + i + 64));
    _mm512_storeu_si512(reinterpret_cast<void*>(dst + i),
                        _mm512_xor_si512(d0, r0));
    _mm512_storeu_si512(reinterpret_cast<void*>(dst + i + 64),
                        _mm512_xor_si512(d1, r1));
  }
  // Masked epilogue for the sub-block tail (whole u16 words only; a stray
  // trailing byte is left untouched, as in the scalar tiers). Every split
  // table maps nibble 0 to 0, so the zero-filled lanes of the maskz loads
  // contribute nothing and the masked stores never touch bytes past the
  // region.
  const std::size_t r = (n - i) & ~std::size_t{1};
  if (r != 0) {
    const __mmask64 m0 =
        r >= 64 ? ~__mmask64{0}
                : _cvtu64_mask64((std::uint64_t{1} << r) - 1);
    const __mmask64 m1 =
        r <= 64 ? 0 : _cvtu64_mask64((std::uint64_t{1} << (r - 64)) - 1);
    __m512i r0, r1;
    block(_mm512_maskz_loadu_epi8(m0, src + i),
          _mm512_maskz_loadu_epi8(m1, src + i + 64), r0, r1);
    const __m512i d0 = _mm512_maskz_loadu_epi8(m0, dst + i);
    const __m512i d1 = _mm512_maskz_loadu_epi8(m1, dst + i + 64);
    _mm512_mask_storeu_epi8(dst + i, m0, _mm512_xor_si512(d0, r0));
    _mm512_mask_storeu_epi8(dst + i + 64, m1, _mm512_xor_si512(d1, r1));
  }
}

// ---- gfni tier: vgf2p8affineqb ----------------------------------------

// c * v for 64 bytes in one instruction; m is the broadcast 8x8 bit matrix.
inline __m512i gfmul64(__m512i v, __m512i m) {
  return _mm512_gf2p8affine_epi64_epi8(v, m, 0);
}

void mul_region_add_gfni(std::uint8_t c, std::uint8_t* dst,
                         const std::uint8_t* src, std::size_t n) {
  const __m512i m =
      _mm512_set1_epi64(static_cast<long long>(gfni_matrices()[c]));
  std::size_t i = 0;
  for (; i + 256 <= n; i += 256) {
    for (std::size_t v = 0; v < 256; v += 64) {
      const __m512i s =
          _mm512_loadu_si512(reinterpret_cast<const void*>(src + i + v));
      const __m512i d =
          _mm512_loadu_si512(reinterpret_cast<const void*>(dst + i + v));
      _mm512_storeu_si512(reinterpret_cast<void*>(dst + i + v),
                          _mm512_xor_si512(d, gfmul64(s, m)));
    }
  }
  for (; i + 64 <= n; i += 64) {
    const __m512i s =
        _mm512_loadu_si512(reinterpret_cast<const void*>(src + i));
    const __m512i d =
        _mm512_loadu_si512(reinterpret_cast<const void*>(dst + i));
    _mm512_storeu_si512(reinterpret_cast<void*>(dst + i),
                        _mm512_xor_si512(d, gfmul64(s, m)));
  }
  if (i < n) {
    // Masked epilogue: the affine op is lane-wise, so a partial vector is
    // safe under a store mask.
    const __mmask64 mk = _cvtu64_mask64(~std::uint64_t{0} >> (64 - (n - i)));
    const __m512i s = _mm512_maskz_loadu_epi8(mk, src + i);
    const __m512i d = _mm512_maskz_loadu_epi8(mk, dst + i);
    _mm512_mask_storeu_epi8(dst + i, mk, _mm512_xor_si512(d, gfmul64(s, m)));
  }
}

void mul_region_multi_gfni(const std::uint8_t* coeffs, std::size_t k,
                           const std::uint8_t* const* srcs, std::uint8_t* dst,
                           std::size_t n, bool accumulate) {
  const std::uint64_t* mats = gfni_matrices();
  std::size_t i = 0;
  for (; i + 256 <= n; i += 256) {
    __m512i acc[4];
    if (accumulate) {
      for (int v = 0; v < 4; ++v) {
        acc[v] = _mm512_loadu_si512(
            reinterpret_cast<const void*>(dst + i + 64 * std::size_t(v)));
      }
    } else {
      for (auto& a : acc) a = _mm512_setzero_si512();
    }
    for (std::size_t s = 0; s < k; ++s) {
      const std::uint8_t c = coeffs[s];
      if (c == 0) continue;
      const std::uint8_t* in = srcs[s] + i;
      if (c == 1) {  // pure XOR lane
        for (int v = 0; v < 4; ++v) {
          acc[v] = _mm512_xor_si512(
              acc[v], _mm512_loadu_si512(reinterpret_cast<const void*>(
                          in + 64 * std::size_t(v))));
        }
        continue;
      }
      const __m512i m = _mm512_set1_epi64(static_cast<long long>(mats[c]));
      for (int v = 0; v < 4; ++v) {
        const __m512i sv = _mm512_loadu_si512(
            reinterpret_cast<const void*>(in + 64 * std::size_t(v)));
        acc[v] = _mm512_xor_si512(acc[v], gfmul64(sv, m));
      }
    }
    for (int v = 0; v < 4; ++v) {
      _mm512_storeu_si512(
          reinterpret_cast<void*>(dst + i + 64 * std::size_t(v)), acc[v]);
    }
  }
  if (i < n) {
    // Byte-at-a-time tail keeps the exact-aliasing contract (see the avx512
    // variant above).
    const std::uint8_t(*prod)[256] = product_tables();
    for (std::size_t j = i; j < n; ++j) {
      std::uint8_t acc = accumulate ? dst[j] : std::uint8_t{0};
      for (std::size_t s = 0; s < k; ++s) {
        if (coeffs[s] != 0) acc ^= prod[coeffs[s]][srcs[s][j]];
      }
      dst[j] = acc;
    }
  }
}

}  // namespace

const Kernels& avx512_kernels() {
  static constexpr Kernels k{
      "avx512",          xor_region_avx512,      mul_region_add_avx512,
      mul_region_multi_avx512, gf16_mul_region_add_avx512,
  };
  return k;
}

const Kernels& gfni_kernels() {
  // GF(2^16) has no affine form here (a 16-bit constant multiply would need
  // a 2x2 block matrix the split tables don't carry); reuse the
  // vpshufb-on-zmm planar kernel, which any GFNI-capable CPU also supports.
  static constexpr Kernels k{
      "gfni",          xor_region_avx512,      mul_region_add_gfni,
      mul_region_multi_gfni, gf16_mul_region_add_avx512,
  };
  return k;
}

bool avx512_tu_compiled() noexcept { return true; }

}  // namespace rpr::gf::detail

#else  // compiler lacks AVX-512BW/VL or GFNI codegen support

namespace rpr::gf::detail {

// Stubs keep the link closed; tier_supported() consults
// avx512_tu_compiled() before ever offering these tiers, so the scalar
// tables below are unreachable through dispatch.
const Kernels& avx512_kernels() { return scalar_kernels(); }
const Kernels& gfni_kernels() { return scalar_kernels(); }
bool avx512_tu_compiled() noexcept { return false; }

}  // namespace rpr::gf::detail

#endif  // AVX-512 + GFNI codegen

#endif  // x86
