// Stripe-to-node placement policies (paper §2.2 and §3.3).
//
// All policies enforce single-rack fault tolerance: at most k blocks of one
// stripe per rack (§2.3). Three policies are provided:
//
//  * kFlat        — one block per rack (classic HDFS-style placement; needs
//                   q >= n + k racks). High repair traffic, used as context.
//  * kContiguous  — the paper's baseline layout (Fig. 3): racks are filled
//                   with k blocks each in stripe order, so data racks come
//                   first and parity blocks cluster in the last rack(s).
//  * kRpr         — the pre-placement optimization (§3.3): start from
//                   kContiguous, then move every parity block that shares a
//                   rack with P0 out into a data rack (swapping with a data
//                   block), so P0 lives among data blocks. After this, a
//                   single data-block failure can be repaired from
//                   {surviving data, P0} with pure XOR, with probability
//                   ~1/n even avoiding any cross-rack reach into parity
//                   racks, and never requires building a decoding matrix.
#pragma once

#include <vector>

#include "rs/rs_code.h"
#include "topology/cluster.h"

namespace rpr::topology {

enum class PlacementPolicy { kFlat, kContiguous, kRpr };

/// Maps every block index of one stripe to the node storing it.
/// Cluster is a small value type, so Placement stores its own copy; a
/// Placement is self-contained and safely copyable.
class Placement {
 public:
  Placement(Cluster cluster, rs::CodeConfig cfg,
            std::vector<NodeId> node_of_block);

  [[nodiscard]] const rs::CodeConfig& code() const noexcept { return cfg_; }
  [[nodiscard]] const Cluster& cluster() const noexcept { return cluster_; }

  [[nodiscard]] NodeId node_of(std::size_t block) const {
    return node_of_[block];
  }
  [[nodiscard]] RackId rack_of(std::size_t block) const {
    return cluster_.rack_of(node_of_[block]);
  }

  /// Blocks of this stripe living in `rack`, in block-index order.
  [[nodiscard]] std::vector<std::size_t> blocks_in_rack(RackId rack) const;

  /// Racks that hold at least one block of this stripe.
  [[nodiscard]] std::vector<RackId> racks_used() const;

  /// Max blocks co-located in one rack. Single-rack fault tolerance holds
  /// iff this is <= k.
  [[nodiscard]] std::size_t max_blocks_per_rack() const;

  [[nodiscard]] bool rack_fault_tolerant() const {
    return max_blocks_per_rack() <= cfg_.k;
  }

 private:
  Cluster cluster_;
  rs::CodeConfig cfg_;
  std::vector<NodeId> node_of_;
};

/// Builds a placement under `policy`. The cluster must have enough racks /
/// slots; `racks_needed` reports the minimum rack count for a policy.
[[nodiscard]] Placement make_placement(const Cluster& cluster,
                                       rs::CodeConfig cfg,
                                       PlacementPolicy policy);

[[nodiscard]] std::size_t racks_needed(rs::CodeConfig cfg,
                                       PlacementPolicy policy);

/// Convenience: builds a cluster just big enough for `cfg` under `policy`
/// (k spare nodes per rack, enough replacement targets for any recoverable
/// failure pattern) together with the placement itself.
struct PlacedStripe {
  Cluster cluster;
  Placement placement;
};
[[nodiscard]] PlacedStripe make_placed_stripe(rs::CodeConfig cfg,
                                              PlacementPolicy policy);

}  // namespace rpr::topology
