#include "topology/placement.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

namespace rpr::topology {

Placement::Placement(Cluster cluster, rs::CodeConfig cfg,
                     std::vector<NodeId> node_of_block)
    : cluster_(cluster), cfg_(cfg), node_of_(std::move(node_of_block)) {
  if (node_of_.size() != cfg_.total()) {
    throw std::invalid_argument("Placement: one node per block required");
  }
  // Blocks must land on distinct nodes.
  auto sorted = node_of_;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("Placement: duplicate node assignment");
  }
}

std::vector<std::size_t> Placement::blocks_in_rack(RackId rack) const {
  std::vector<std::size_t> out;
  for (std::size_t b = 0; b < node_of_.size(); ++b) {
    if (cluster_.rack_of(node_of_[b]) == rack) out.push_back(b);
  }
  return out;
}

std::vector<RackId> Placement::racks_used() const {
  std::vector<RackId> out;
  for (std::size_t b = 0; b < node_of_.size(); ++b) {
    const RackId r = cluster_.rack_of(node_of_[b]);
    if (std::find(out.begin(), out.end(), r) == out.end()) out.push_back(r);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t Placement::max_blocks_per_rack() const {
  std::map<RackId, std::size_t> count;
  for (std::size_t b = 0; b < node_of_.size(); ++b) {
    ++count[cluster_.rack_of(node_of_[b])];
  }
  std::size_t best = 0;
  for (const auto& [rack, c] : count) best = std::max(best, c);
  return best;
}

std::size_t racks_needed(rs::CodeConfig cfg, PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kFlat:
      return cfg.total();
    case PlacementPolicy::kContiguous:
    case PlacementPolicy::kRpr:
      return cfg.racks_when_full();
  }
  return cfg.total();
}

namespace {

std::vector<NodeId> contiguous_nodes(const Cluster& cluster,
                                     rs::CodeConfig cfg) {
  // Rack i receives blocks [i*k, (i+1)*k), matching Fig. 3: for RS(4,2),
  // r0 = {d0, d1}, r1 = {d2, d3}, r2 = {p0, p1}.
  std::vector<NodeId> nodes(cfg.total());
  for (std::size_t b = 0; b < cfg.total(); ++b) {
    const RackId rack = b / cfg.k;
    const std::size_t slot_in_rack = b % cfg.k;
    nodes[b] = cluster.slot(rack, slot_in_rack);
  }
  return nodes;
}

}  // namespace

Placement make_placement(const Cluster& cluster, rs::CodeConfig cfg,
                         PlacementPolicy policy) {
  if (cluster.racks() < racks_needed(cfg, policy)) {
    throw std::invalid_argument("make_placement: not enough racks");
  }

  switch (policy) {
    case PlacementPolicy::kFlat: {
      std::vector<NodeId> nodes(cfg.total());
      for (std::size_t b = 0; b < cfg.total(); ++b) {
        nodes[b] = cluster.slot(b, 0);
      }
      return Placement(cluster, cfg, std::move(nodes));
    }

    case PlacementPolicy::kContiguous: {
      if (cluster.block_slots_per_rack() < cfg.k) {
        throw std::invalid_argument("make_placement: rack slots < k");
      }
      return Placement(cluster, cfg, contiguous_nodes(cluster, cfg));
    }

    case PlacementPolicy::kRpr: {
      if (cluster.block_slots_per_rack() < cfg.k) {
        throw std::invalid_argument("make_placement: rack slots < k");
      }
      auto nodes = contiguous_nodes(cluster, cfg);
      // §3.3: move every parity that shares P0's rack into a data rack by
      // swapping with a data block; the displaced data joins P0. Distinct
      // data racks are chosen round-robin so no rack exceeds k blocks.
      // Example RS(4,2): contiguous r2 = {p0, p1}; swap p1 <-> d0 gives
      // r0 = {p1, d1}, r2 = {p0, d0} — exactly the paper's Fig. 4 layout.
      const std::size_t p0 = rs::p0_index(cfg);
      const auto p0_rack = [&] { return cluster.rack_of(nodes[p0]); };
      std::size_t next_data = 0;  // data block cursor for swaps
      for (std::size_t parity = p0 + 1; parity < cfg.total(); ++parity) {
        if (cluster.rack_of(nodes[parity]) != p0_rack()) continue;
        // Find the next data block outside P0's rack to swap with.
        while (next_data < cfg.n &&
               cluster.rack_of(nodes[next_data]) == p0_rack()) {
          ++next_data;
        }
        assert(next_data < cfg.n && "there is always a data rack to swap with");
        std::swap(nodes[parity], nodes[next_data]);
        ++next_data;
      }
      return Placement(cluster, cfg, std::move(nodes));
    }
  }
  throw std::logic_error("make_placement: unknown policy");
}

PlacedStripe make_placed_stripe(rs::CodeConfig cfg, PlacementPolicy policy) {
  const std::size_t racks = racks_needed(cfg, policy);
  const std::size_t slots =
      policy == PlacementPolicy::kFlat ? 1 : cfg.k;
  // k spares per rack: the worst multi-failure case puts k failures in one
  // rack, and each failed block gets a rack-local replacement node.
  Cluster cluster(racks, slots, /*spares_per_rack=*/cfg.k);
  Placement placement = make_placement(cluster, cfg, policy);
  return PlacedStripe{cluster, std::move(placement)};
}

}  // namespace rpr::topology
