// Data-center topology model (paper §2.2, Fig. 2).
//
// A cluster is a set of racks connected by an aggregation switch; nodes
// within a rack hang off the rack's top-of-rack (TOR) switch. The two-level
// bandwidth hierarchy is the paper's central premise: inner-rack links are
// ~10x faster than cross-rack links (10 Gb/s vs 1 Gb/s in production, §1).
//
// Node ids are dense integers laid out rack-major: rack r owns node ids
// [r * nodes_per_rack, (r+1) * nodes_per_rack). The first `k` slots of a
// rack hold stripe blocks under the paper's placements; the remaining slots
// are spares used as replacement nodes during repair.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/units.h"

namespace rpr::topology {

using NodeId = std::size_t;
using RackId = std::size_t;

/// Link and compute speeds shared by the simulator and the analysis module.
struct NetworkParams {
  /// Bandwidth between two nodes in the same rack (through the TOR switch).
  util::Bandwidth inner = util::Bandwidth::gbps(10);
  /// Bandwidth between nodes in different racks (through aggregation).
  util::Bandwidth cross = util::Bandwidth::gbps(1);
  /// Decode throughput when a decoding matrix must be built and applied
  /// (paper §2.3: ~1000 MB/s for RS decode).
  util::Bandwidth decode_with_matrix = util::Bandwidth::mbytes_per_sec(1000);
  /// Decode throughput on the pure-XOR path (paper §3.3: building the
  /// decoding matrix is up to 75% of decode time, i.e. t_wd = 4 * t_nd).
  util::Bandwidth decode_xor = util::Bandwidth::mbytes_per_sec(4000);
  /// When true (default), decode/compute time is charged in the simulator.
  /// The paper's closed-form analysis (§4.1) neglects it; analysis-replica
  /// benches switch it off.
  bool charge_compute = true;
  /// Slice-pipelined repair: blocks move and decode in units of this many
  /// bytes, with slice s of every op overlapping slice s+1 of its
  /// producers (repair pipelining, cf. Li et al.). 0 = whole-block
  /// store-and-forward (the historical model).
  std::size_t slice_size = 0;

  /// The paper's simulator setup: inner 1 Gb/s (Simics default node NIC),
  /// cross 0.1 Gb/s (wondershaper-throttled), 10:1 ratio (§5.1).
  static NetworkParams simics_like() {
    NetworkParams p;
    p.inner = util::Bandwidth::gbps(1);
    p.cross = util::Bandwidth::gbps(0.1);
    return p;
  }
};

class Cluster {
 public:
  /// `spares_per_rack` extra nodes per rack beyond `block_slots_per_rack`
  /// are available as replacement targets.
  Cluster(std::size_t racks, std::size_t block_slots_per_rack,
          std::size_t spares_per_rack = 1)
      : racks_(racks),
        slots_(block_slots_per_rack),
        spares_(spares_per_rack) {
    if (racks == 0 || block_slots_per_rack == 0) {
      throw std::invalid_argument("Cluster: racks and slots must be positive");
    }
  }

  [[nodiscard]] std::size_t racks() const noexcept { return racks_; }
  [[nodiscard]] std::size_t nodes_per_rack() const noexcept {
    return slots_ + spares_;
  }
  [[nodiscard]] std::size_t block_slots_per_rack() const noexcept {
    return slots_;
  }
  [[nodiscard]] std::size_t total_nodes() const noexcept {
    return racks_ * nodes_per_rack();
  }

  [[nodiscard]] RackId rack_of(NodeId node) const {
    if (node >= total_nodes()) throw std::out_of_range("rack_of: bad node");
    return node / nodes_per_rack();
  }

  [[nodiscard]] bool same_rack(NodeId a, NodeId b) const {
    return rack_of(a) == rack_of(b);
  }

  /// The i-th block slot of a rack (i < block_slots_per_rack()).
  [[nodiscard]] NodeId slot(RackId rack, std::size_t i) const {
    if (rack >= racks_ || i >= slots_) throw std::out_of_range("slot");
    return rack * nodes_per_rack() + i;
  }

  /// The i-th spare node of a rack (i < spares_per_rack).
  [[nodiscard]] NodeId spare(RackId rack, std::size_t i = 0) const {
    if (rack >= racks_ || i >= spares_) throw std::out_of_range("spare");
    return rack * nodes_per_rack() + slots_ + i;
  }

  [[nodiscard]] std::vector<NodeId> nodes_in_rack(RackId rack) const {
    std::vector<NodeId> out;
    out.reserve(nodes_per_rack());
    for (std::size_t i = 0; i < nodes_per_rack(); ++i) {
      out.push_back(rack * nodes_per_rack() + i);
    }
    return out;
  }

 private:
  std::size_t racks_;
  std::size_t slots_;
  std::size_t spares_;
};

}  // namespace rpr::topology
