// Ablation: does the contention model matter?
//
// The paper's cost model (and our SimNetwork) serializes transfers on ports
// — the "timestep" view. Real fabrics share links (TCP fair sharing). This
// bench reruns the Fig. 8 single-failure sweep under both models and shows
// the scheme ordering and relative gaps are robust to the choice.
#include <cstdio>

#include "bench_support.h"

namespace {

rpr::bench::SingleSweep sweep_fluid(const rpr::repair::Planner& planner,
                                    const rpr::rs::RSCode& code,
                                    const rpr::topology::PlacedStripe& placed,
                                    const rpr::topology::NetworkParams& params) {
  rpr::bench::SingleSweep s;
  for (std::size_t f = 0; f < code.config().n; ++f) {
    rpr::repair::RepairProblem p;
    p.code = &code;
    p.placement = &placed.placement;
    p.block_size = rpr::bench::kPaperBlock;
    p.failed = {f};
    p.choose_default_replacements();
    const auto planned = planner.plan(p);
    const auto sim =
        rpr::repair::simulate_fluid(planned.plan, placed.cluster, params);
    s.time.add(rpr::util::to_sec(sim.total_repair_time));
    s.traffic.add(static_cast<double>(sim.cross_rack_bytes) /
                  static_cast<double>(rpr::bench::kPaperBlock));
  }
  return s;
}

}  // namespace

int main() {
  using namespace rpr;
  const auto params = topology::NetworkParams::simics_like();
  const repair::TraditionalPlanner tra;
  const repair::CarPlanner car;
  const repair::RprPlanner rpr_planner;

  std::printf("Ablation — store-and-forward ports vs fluid max-min fair "
              "sharing,\nsingle-block failure repair time (s), averaged "
              "over positions\n\n");

  util::TextTable t({"code", "Tra port", "Tra fluid", "CAR port", "CAR fluid",
                     "RPR port", "RPR fluid", "RPRvTra fluid"});
  for (const auto cfg : bench::single_failure_configs()) {
    const rs::RSCode code(cfg);
    const auto placed =
        topology::make_placed_stripe(cfg, topology::PlacementPolicy::kRpr);
    const auto p_tra = bench::sweep_single(tra, code, placed, params);
    const auto p_car = bench::sweep_single(car, code, placed, params);
    const auto p_rpr = bench::sweep_single(rpr_planner, code, placed, params);
    const auto f_tra = sweep_fluid(tra, code, placed, params);
    const auto f_car = sweep_fluid(car, code, placed, params);
    const auto f_rpr = sweep_fluid(rpr_planner, code, placed, params);
    t.add_row({bench::code_name(cfg), util::fmt(p_tra.time.avg, 1),
               util::fmt(f_tra.time.avg, 1), util::fmt(p_car.time.avg, 1),
               util::fmt(f_car.time.avg, 1), util::fmt(p_rpr.time.avg, 1),
               util::fmt(f_rpr.time.avg, 1),
               bench::pct_reduction(f_tra.time.avg, f_rpr.time.avg)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("shape check: the RPR < CAR < Tra ordering and the reduction "
              "magnitudes survive\nthe switch from serialized ports to fair "
              "sharing; fluid times are slightly lower\nbecause sharing "
              "overlaps transfers the port model queues.\n");
  return 0;
}
