// Fig. 10: cross-rack data transfer traffic for traditional (Tra) and RPR
// repair of multi-block failures (2 ~ k-1 failures), simulator; averages
// with min/max caps over all failure-position combinations.
//
// Paper result: RPR uses 29.35% on average and up to 50% fewer cross-rack
// transfers than the traditional scheme. The closed-form count is
// (n/k) * z intermediates vs ~n blocks (§4.3.3).
#include <cstdio>

#include "bench_support.h"
#include "repair/analysis.h"

int main() {
  using namespace rpr;
  const auto params = topology::NetworkParams::simics_like();
  const repair::TraditionalPlanner tra;
  const repair::RprPlanner rpr_planner;

  std::printf("Fig. 10 — cross-rack traffic (blocks), multi-block failures "
              "(non-worst case),\nall failure-position combinations\n\n");

  util::TextTable t({"code", "Tra avg", "RPR avg", "RPR min", "RPR max",
                     "eq(n/k*z)", "avg reduction"});
  double sum_red = 0.0, max_red = 0.0;
  std::size_t rows = 0;
  for (const auto mc : bench::multi_nonworst_configs()) {
    const rs::RSCode code(mc.code);
    const auto placed = topology::make_placed_stripe(
        mc.code, topology::PlacementPolicy::kRpr);
    const auto s_tra = bench::sweep_multi(tra, code, placed, mc.z, params);
    const auto s_rpr =
        bench::sweep_multi(rpr_planner, code, placed, mc.z, params);
    const double red = 1.0 - s_rpr.traffic.avg / s_tra.traffic.avg;
    const double red_best = 1.0 - s_rpr.traffic.min / s_tra.traffic.avg;
    sum_red += red;
    max_red = std::max(max_red, red_best);
    ++rows;
    t.add_row({bench::code_name(mc), util::fmt(s_tra.traffic.avg, 2),
               util::fmt(s_rpr.traffic.avg, 2),
               util::fmt(s_rpr.traffic.min, 0),
               util::fmt(s_rpr.traffic.max, 0),
               std::to_string(repair::analysis::rpr_multi_traffic_blocks(
                   mc.code.n, mc.code.k, mc.z)),
               util::fmt(red * 100, 1) + "%"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("measured: avg reduction %.1f%%, best-case %.1f%%\n",
              sum_red / static_cast<double>(rows) * 100, max_red * 100);
  std::printf("paper:    avg reduction 29.35%%, up to 50%%\n");
  return 0;
}
