// Shared helpers for the testbed (EC2-analogue) benches, Figs. 12-14.
//
// Testbed runs move real bytes through paced channels, so the sweeps are
// kept affordable: 2 MiB blocks, Table-1 bandwidths scaled up 32x, and a
// capped number of failure positions per configuration. Ratios between
// schemes — what the paper's figures report — are preserved.
#pragma once

#include <vector>

#include "bench_support.h"
#include "runtime/testbed.h"
#include "util/rng.h"

namespace rpr::bench {

inline constexpr std::uint64_t kTestbedBlock = 2 << 20;
inline constexpr double kTestbedScale = 12.0;

inline runtime::TestbedParams testbed_params(std::size_t racks,
                                             std::size_t n) {
  runtime::TestbedParams p;
  p.net = runtime::RegionNet::ec2_table1(racks);
  p.time_scale = kTestbedScale;
  p.decode_matrix_dim = n;
  return p;
}

/// Wall-clock milliseconds for one repair on the testbed.
inline double run_testbed_ms(const repair::Planner& planner,
                             const rs::RSCode& code,
                             const topology::PlacedStripe& placed,
                             const std::vector<std::size_t>& failed,
                             const std::vector<rs::Block>& stripe) {
  repair::RepairProblem problem;
  problem.code = &code;
  problem.placement = &placed.placement;
  problem.block_size = kTestbedBlock;
  problem.failed = failed;
  problem.choose_default_replacements();
  const auto planned = planner.plan(problem);

  runtime::Testbed bed(placed.cluster,
                       testbed_params(placed.cluster.racks(),
                                      code.config().n));
  const auto result = bed.execute(planned.plan, planned.outputs, stripe);
  // Sanity: reconstructions must be bit-exact, every run.
  for (std::size_t i = 0; i < failed.size(); ++i) {
    if (result.outputs[i] != stripe[failed[i]]) {
      std::fprintf(stderr, "testbed reconstruction mismatch!\n");
      std::exit(1);
    }
  }
  return static_cast<double>(result.wall_time.count()) / 1e6;
}

/// RPR planner whose greedy pipeline knows the real (Table-1) link costs —
/// without this, the uniform-cost greedy can pair intermediates across the
/// slowest region links (see RprOptions::cross_cost).
inline repair::RprPlanner hetero_rpr_planner(std::size_t racks) {
  const runtime::RegionNet net = runtime::RegionNet::ec2_table1(racks);
  repair::RprOptions o;
  o.cross_cost = [net](topology::RackId a, topology::RackId b) {
    return 10.0 * net.mean_cross_mbps() / net.between_racks(a, b).as_mbps();
  };
  return repair::RprPlanner(o);
}

/// Deterministic encoded stripe for testbed runs.
inline std::vector<rs::Block> testbed_stripe(const rs::RSCode& code) {
  std::vector<rs::Block> stripe(code.config().total());
  util::Xoshiro256 rng(0xEC2);
  for (std::size_t b = 0; b < code.config().n; ++b) {
    stripe[b].resize(kTestbedBlock);
    for (auto& byte : stripe[b]) byte = static_cast<std::uint8_t>(rng());
  }
  code.encode_stripe(stripe);
  return stripe;
}

/// Evenly-spaced sample of `want` combinations of z failures (testbed runs
/// are too slow for the full enumeration the simulator benches do).
inline std::vector<std::vector<std::size_t>> sample_patterns(
    std::size_t total_blocks, std::size_t z, std::size_t want) {
  std::vector<std::vector<std::size_t>> all;
  util::for_each_combination(total_blocks, z,
                             [&](const std::vector<std::size_t>& failed) {
                               all.push_back(failed);
                             });
  if (all.size() <= want) return all;
  std::vector<std::vector<std::size_t>> out;
  for (std::size_t i = 0; i < want; ++i) {
    out.push_back(all[i * all.size() / want]);
  }
  return out;
}

}  // namespace rpr::bench
