// Fig. 8: total repair time for traditional (Tra), CAR and RPR repair of
// single-block failures, six RS configurations, on the simulator (Simics
// substitute: 1 Gb/s inner, 0.1 Gb/s cross, 256 MB blocks).
//
// Paper result: RPR cuts total repair time by 67% on average (up to 81.5%)
// vs traditional, and by 24% on average (up to 37%) vs CAR.
#include <cstdio>

#include "bench_support.h"

int main() {
  using namespace rpr;
  const auto params = topology::NetworkParams::simics_like();
  const repair::TraditionalPlanner tra;
  const repair::CarPlanner car;
  const repair::RprPlanner rpr_planner;

  std::printf("Fig. 8 — total repair time (s), single-block failure, "
              "simulator,\naveraged over all data-block positions\n\n");

  util::TextTable t({"code", "Tra (s)", "CAR (s)", "RPR (s)", "RPR vs Tra",
                     "RPR vs CAR"});
  double sum_vs_tra = 0.0, sum_vs_car = 0.0;
  double max_vs_tra = 0.0, max_vs_car = 0.0;
  std::size_t rows = 0;
  for (const auto cfg : bench::single_failure_configs()) {
    const rs::RSCode code(cfg);
    const auto placed =
        topology::make_placed_stripe(cfg, topology::PlacementPolicy::kRpr);
    const auto s_tra = bench::sweep_single(tra, code, placed, params);
    const auto s_car = bench::sweep_single(car, code, placed, params);
    const auto s_rpr = bench::sweep_single(rpr_planner, code, placed, params);
    const double vs_tra = 1.0 - s_rpr.time.avg / s_tra.time.avg;
    const double vs_car = 1.0 - s_rpr.time.avg / s_car.time.avg;
    sum_vs_tra += vs_tra;
    sum_vs_car += vs_car;
    max_vs_tra = std::max(max_vs_tra, vs_tra);
    max_vs_car = std::max(max_vs_car, vs_car);
    ++rows;
    t.add_row({bench::code_name(cfg), util::fmt(s_tra.time.avg, 1),
               util::fmt(s_car.time.avg, 1), util::fmt(s_rpr.time.avg, 1),
               util::fmt(vs_tra * 100, 1) + "%",
               util::fmt(vs_car * 100, 1) + "%"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("measured: RPR vs Tra avg %.1f%% (max %.1f%%); RPR vs CAR avg "
              "%.1f%% (max %.1f%%)\n",
              sum_vs_tra / static_cast<double>(rows) * 100, max_vs_tra * 100,
              sum_vs_car / static_cast<double>(rows) * 100, max_vs_car * 100);
  std::printf("paper:    RPR vs Tra avg 67%% (max 81.5%%); RPR vs CAR avg "
              "24%% (max 37%%)\n");

  // Where the time goes (obs probe): per-phase wall-clock extents for one
  // representative repair — RS(6,3), first data block lost. Traditional has
  // no inner-aggregation stage, CAR pays one long cross hop per rack, RPR
  // pipelines the cross-rack stage.
  std::printf("\nphase breakdown (s), RS(6,3), block 0 lost:\n\n");
  const rs::CodeConfig cfg63{6, 3};
  const rs::RSCode code63(cfg63);
  const auto placed63 =
      topology::make_placed_stripe(cfg63, topology::PlacementPolicy::kRpr);
  util::TextTable pt(
      {"scheme", "read", "inner agg", "cross pipe", "decode", "makespan"});
  const repair::Planner* planners[] = {&tra, &car, &rpr_planner};
  for (const repair::Planner* p : planners) {
    const auto ph = bench::phase_seconds(*p, code63, placed63, {0}, params);
    pt.add_row({p->name(), util::fmt(ph.read, 2), util::fmt(ph.inner, 2),
                util::fmt(ph.cross, 2), util::fmt(ph.decode, 2),
                util::fmt(ph.makespan, 2)});
  }
  std::printf("%s\n", pt.render().c_str());
  return 0;
}
