// Ablation: the §3.2 cross-rack pipeline (Fig. 5 schedule 1 vs schedule 2).
//
// RPR with partial decoding but star cross-rack transfers isolates what the
// pipeline itself contributes on top of inner-rack partial decoding.
#include <cstdio>

#include "bench_support.h"

int main() {
  using namespace rpr;
  auto params = topology::NetworkParams::simics_like();
  params.charge_compute = false;  // isolate the transfer schedule

  repair::RprOptions star;
  star.pipeline_cross = false;
  const repair::RprPlanner starred(star);
  const repair::RprPlanner pipelined;

  std::printf("Ablation — §3.2 cross-rack pipeline vs star transfers, "
              "single data-block\nfailures, simulator (compute uncharged), "
              "average seconds over positions\n\n");

  util::TextTable t({"code", "star (s)", "pipeline (s)", "reduction"});
  for (const auto cfg : bench::single_failure_configs()) {
    const rs::RSCode code(cfg);
    const auto placed =
        topology::make_placed_stripe(cfg, topology::PlacementPolicy::kRpr);
    const auto s_star = bench::sweep_single(starred, code, placed, params);
    const auto s_pipe = bench::sweep_single(pipelined, code, placed, params);
    t.add_row({bench::code_name(cfg), util::fmt(s_star.time.avg, 1),
               util::fmt(s_pipe.time.avg, 1),
               bench::pct_reduction(s_star.time.avg, s_pipe.time.avg)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("shape check: gains appear once >= 3 racks hold intermediates "
              "(Fig. 5's 31:21\nratio for RS(6,2)); with 2 source racks the "
              "pipeline degenerates to the star.\n");
  return 0;
}
