// Slice-pipelining sweep: whole-block vs sliced repair wall time on the two
// real-byte engines (threaded testbed, TCP loopback), plus the chained
// cross-rack schedule on the testbed and the discrete-event simulator.
//
// Part 1 — star schedules: one RPR single-failure repair of a 64 MiB block
// over a (12,4) stripe runs at slice sizes {whole-block, 16 KiB, 64 KiB,
// 256 KiB}; each row reports the best-of-N wall time and its speedup over
// whole-block mode on the same engine. The TCP loopback paces each
// connection independently and wins ~1.8x; the testbed enforces exclusive
// rack TX/RX ports, and a port-bound star cannot be pipelined below the
// recovery rack's RX busy time, so slicing only trims the inner collection
// phase (~1.05x).
//
// Part 2 — chained schedules: the same repair re-planned as a relay chain
// (Scheme::kRprChained) on an RS(14,10) stripe spread one-block-per-rack,
// where the star's port bound actually bites (14 contributing racks). The
// chained whole-block row documents the store-and-forward serialization
// (chains are a slice-mode scheme); the sliced rows collapse toward the
// pipeline-depth bound. Chained rows report speedup against the *star*
// whole-block baseline — the schedule the system ran before this scheme —
// and the sweep hard-fails unless the best chained testbed row is >= 1.5x
// that baseline with byte-identical rebuilds and identical cross-rack
// traffic.
//
// BENCH_pipeline.json at the repo root is a checked-in capture of this
// binary's JSON output (first argument, default "BENCH_pipeline.json";
// "-" skips the file).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "net/tcp_runtime.h"
#include "repair/executor_sim.h"
#include "repair/planner.h"
#include "runtime/testbed.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

namespace {

constexpr std::uint64_t kBlock = 64ull << 20;
constexpr double kTimeScale = 4.0;  // keeps paced 0.1 Gb/s cross affordable
constexpr int kReps = 2;            // best-of, absorbs scheduler noise

// The chained fixture trades block size for time scale so the serialized
// whole-block chain row stays affordable.
constexpr std::uint64_t kChainBlock = 32ull << 20;
constexpr double kChainTimeScale = 8.0;

struct Run {
  std::string engine;
  std::size_t slice_size;
  double wall_s;
  std::uint64_t cross_bytes;
  std::uint64_t inner_bytes;
  double speedup = 0.0;
};

struct Fixture {
  rpr::rs::RSCode code;
  rpr::topology::PlacedStripe placed;
  std::uint64_t block_size;
  std::vector<rpr::rs::Block> stripe;
  rpr::repair::RepairProblem problem;

  Fixture(rpr::rs::CodeConfig cfg, rpr::topology::PlacementPolicy policy,
          std::uint64_t block)
      : code(cfg),
        placed(rpr::topology::make_placed_stripe(cfg, policy)),
        block_size(block) {
    stripe.resize(code.config().total());
    rpr::util::Xoshiro256 rng(0x51705);
    for (std::size_t b = 0; b < code.config().n; ++b) {
      stripe[b].resize(block_size);
      for (auto& byte : stripe[b]) byte = static_cast<std::uint8_t>(rng());
    }
    code.encode_stripe(stripe);

    problem.code = &code;
    problem.placement = &placed.placement;
    problem.block_size = block_size;
    problem.failed = {0};
    problem.choose_default_replacements();
  }

  [[nodiscard]] rpr::repair::PlannedRepair plan(
      rpr::repair::Scheme scheme) const {
    return rpr::repair::make_planner(scheme)->plan(problem);
  }

  /// The paper's simulator bandwidths (§5.1): 1 Gb/s inner, 0.1 Gb/s cross.
  [[nodiscard]] rpr::runtime::RegionNet net() const {
    return rpr::runtime::RegionNet::uniform(
        placed.cluster.racks(), rpr::util::Bandwidth::gbps(1),
        rpr::util::Bandwidth::gbps(0.1));
  }

  template <typename Engine>
  Run measure(const char* name, const rpr::repair::PlannedRepair& planned,
              Engine&& make, std::size_t slice) const {
    Run run{name, slice, 1e30, 0, 0};
    for (int rep = 0; rep < kReps; ++rep) {
      auto engine = make(slice);
      const auto result =
          engine.execute(planned.plan, planned.outputs, stripe);
      if (result.outputs[0] != stripe[0]) {
        std::fprintf(stderr, "%s reconstruction mismatch (slice %zu)!\n",
                     name, slice);
        std::exit(1);
      }
      const double s = static_cast<double>(result.wall_time.count()) / 1e9;
      if (s < run.wall_s) run.wall_s = s;
      run.cross_bytes = result.cross_rack_bytes;
      run.inner_bytes = result.inner_rack_bytes;
    }
    return run;
  }

  /// Discrete-event makespan of `planned` at `slice` (exact, no reps).
  Run simulate(const char* name, const rpr::repair::PlannedRepair& planned,
               std::size_t slice) const {
    rpr::topology::NetworkParams p = rpr::topology::NetworkParams::simics_like();
    p.slice_size = slice;
    const auto sim =
        rpr::repair::simulate(planned.plan, placed.cluster, p);
    return Run{name, slice, rpr::util::to_sec(sim.total_repair_time),
               sim.cross_rack_bytes, sim.inner_rack_bytes};
  }
};

std::string slice_name(std::size_t slice) {
  if (slice == 0) return "whole";
  return std::to_string(slice >> 10) + "K";
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_pipeline.json";

  std::vector<Run> runs;

  // -------- Part 1: RPR star, (12,4), rpr placement (historical rows).
  Fixture star_f({12, 4}, rpr::topology::PlacementPolicy::kRpr, kBlock);
  const auto star_plan = star_f.plan(rpr::repair::Scheme::kRpr);

  const std::vector<std::size_t> slices = {0, 16 << 10, 64 << 10, 256 << 10};
  for (const std::size_t slice : slices) {
    runs.push_back(star_f.measure(
        "testbed", star_plan,
        [&](std::size_t s) {
          rpr::runtime::TestbedParams p;
          p.net = star_f.net();
          p.time_scale = kTimeScale;
          p.decode_matrix_dim = 12;
          p.slice_size = s;
          return rpr::runtime::Testbed(star_f.placed.cluster, p);
        },
        slice));
  }
  for (const std::size_t slice : slices) {
    runs.push_back(star_f.measure(
        "tcp", star_plan,
        [&](std::size_t s) {
          rpr::net::TcpRuntimeParams p;
          p.net = star_f.net();
          p.time_scale = kTimeScale;
          p.decode_matrix_dim = 12;
          p.slice_size = s;
          return rpr::net::TcpRuntime(star_f.placed.cluster, p);
        },
        slice));
  }

  // -------- Part 2: chained relay schedule, RS(14,10), one block per rack.
  Fixture chain_f({14, 10}, rpr::topology::PlacementPolicy::kFlat,
                  kChainBlock);
  const auto star14 = chain_f.plan(rpr::repair::Scheme::kRpr);
  const auto chained14 = chain_f.plan(rpr::repair::Scheme::kRprChained);

  const auto chain_testbed = [&](std::size_t s) {
    rpr::runtime::TestbedParams p;
    p.net = chain_f.net();
    p.time_scale = kChainTimeScale;
    p.decode_matrix_dim = 14;
    p.slice_size = s;
    return rpr::runtime::Testbed(chain_f.placed.cluster, p);
  };
  const std::vector<std::size_t> chain_slices = {0, 64 << 10, 256 << 10,
                                                 1 << 20};
  runs.push_back(
      chain_f.measure("testbed-star14", star14, chain_testbed, 0));
  const double star14_whole = runs.back().wall_s;
  const std::uint64_t star14_cross = runs.back().cross_bytes;
  for (const std::size_t slice : chain_slices) {
    runs.push_back(
        chain_f.measure("testbed-chained14", chained14, chain_testbed, slice));
    if (runs.back().cross_bytes != star14_cross) {
      std::fprintf(stderr,
                   "chained cross-rack traffic %llu differs from the star's "
                   "%llu — the chain must move identical bytes!\n",
                   static_cast<unsigned long long>(runs.back().cross_bytes),
                   static_cast<unsigned long long>(star14_cross));
      return 1;
    }
  }

  runs.push_back(chain_f.simulate("sim-star14", star14, 0));
  const double sim_star14_whole = runs.back().wall_s;
  for (const std::size_t slice : chain_slices) {
    runs.push_back(chain_f.simulate("sim-chained14", chained14, slice));
  }

  // Speedups: star engines against their own whole-block row; chained rows
  // against the whole-block *star* on the same engine (the pre-chained
  // schedule — a chain run whole-block is strictly worse, and the row
  // documents that too).
  const auto whole_of = [&](const char* engine) {
    for (const Run& r : runs) {
      if (r.slice_size == 0 && r.engine == engine) return r.wall_s;
    }
    return 0.0;
  };
  for (Run& r : runs) {
    double base = whole_of(r.engine.c_str());
    if (r.engine == "testbed-chained14") base = star14_whole;
    if (r.engine == "sim-chained14") base = sim_star14_whole;
    r.speedup = base / r.wall_s;
  }

  std::printf(
      "Slice-pipelined repair — star: RPR (12,4), 64 MiB block; chained: "
      "RS(14,10)\nflat placement, 32 MiB block. 1 Gb/s inner / 0.1 Gb/s "
      "cross, best of %d\n(chained rows: speedup vs the whole-block star on "
      "the same engine)\n\n",
      kReps);
  rpr::util::TextTable t({"engine", "slice", "wall (s)", "speedup"});
  for (const Run& r : runs) {
    t.add_row({r.engine, slice_name(r.slice_size),
               rpr::util::fmt(r.wall_s, 3), rpr::util::fmt(r.speedup, 2)});
  }
  std::printf("%s\n", t.render().c_str());

  double tcp64 = 0.0;
  double chained_best = 0.0;
  double sim_chained_best = 0.0;
  for (const Run& r : runs) {
    if (r.slice_size == (64u << 10) && r.engine == "tcp") tcp64 = r.speedup;
    if (r.engine == "testbed-chained14" && r.slice_size != 0) {
      chained_best = std::max(chained_best, r.speedup);
    }
    if (r.engine == "sim-chained14" && r.slice_size != 0) {
      sim_chained_best = std::max(sim_chained_best, r.speedup);
    }
  }
  std::printf(
      "headline: tcp @64K slices %.2fx whole-block (floor 1.40x); chained "
      "testbed %.2fx / sim %.2fx vs whole-block star (floor 1.50x)\n",
      tcp64, chained_best, sim_chained_best);

  if (std::strcmp(json_path, "-") != 0) {
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    char date[64];
    const std::time_t now = std::time(nullptr);
    std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%S+00:00",
                  std::gmtime(&now));
    std::fprintf(out,
                 "{\n  \"context\": {\n"
                 "    \"date\": \"%s\",\n"
                 "    \"executable\": \"./build/bench/pipeline_sweep\",\n"
                 "    \"star\": \"(12,4) rpr placement, %llu MiB block\",\n"
                 "    \"chained\": \"(14,10) flat placement, %llu MiB "
                 "block\",\n"
                 "    \"inner_gbps\": 1.0,\n"
                 "    \"cross_gbps\": 0.1,\n"
                 "    \"time_scale\": %.1f,\n"
                 "    \"chained_time_scale\": %.1f,\n"
                 "    \"reps\": %d\n  },\n  \"benchmarks\": [\n",
                 date, static_cast<unsigned long long>(kBlock >> 20),
                 static_cast<unsigned long long>(kChainBlock >> 20),
                 kTimeScale, kChainTimeScale, kReps);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const Run& r = runs[i];
      std::fprintf(out,
                   "    {\n"
                   "      \"name\": \"pipeline/%s/slice:%zu\",\n"
                   "      \"engine\": \"%s\",\n"
                   "      \"slice_size\": %zu,\n"
                   "      \"wall_s\": %.6f,\n"
                   "      \"speedup_vs_whole\": %.4f,\n"
                   "      \"cross_rack_bytes\": %llu,\n"
                   "      \"inner_rack_bytes\": %llu\n    }%s\n",
                   r.engine.c_str(), r.slice_size, r.engine.c_str(),
                   r.slice_size, r.wall_s, r.speedup,
                   static_cast<unsigned long long>(r.cross_bytes),
                   static_cast<unsigned long long>(r.inner_bytes),
                   i + 1 == runs.size() ? "" : ",");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  }
  const bool ok = tcp64 >= 1.4 && chained_best >= 1.5 &&
                  sim_chained_best >= 1.5;
  return ok ? 0 : 2;
}
