// Slice-pipelining sweep: whole-block vs sliced repair wall time on the two
// real-byte engines (threaded testbed, TCP loopback).
//
// One RPR single-failure repair of a 64 MiB block over a (12,4) stripe runs
// at slice sizes {whole-block, 16 KiB, 64 KiB, 256 KiB}; each row reports
// the best-of-N wall time and its speedup over whole-block mode on the same
// engine. BENCH_pipeline.json at the repo root is a checked-in capture of
// this binary's JSON output (first argument, default
// "BENCH_pipeline.json"; "-" skips the file).
//
// The headline number: 64 KiB slices on the TCP loopback must beat
// whole-block by >= 1.4x — the pipelining win the paper's §3.2 schedule
// predicts once transfer stages overlap instead of storing and forwarding.
//
// Expected shape of the results: the TCP loopback paces each connection
// independently (no shared rack-port model), so slicing overlaps the whole
// star of cross-rack partial uploads and wins ~1.8x. The testbed enforces
// exclusive rack TX/RX ports exactly like the discrete-event simulator, and
// RPR's star schedule keeps the replacement rack's RX port busy back to
// back — a port-bound plan cannot be pipelined below the port's busy time,
// so slicing only trims the inner-rack collection phase (~1.05x, matching
// the simulator's prediction for the same plan). Chained relay plans are
// where sliced port-model makespans collapse; see SlicedSimnet tests.
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "net/tcp_runtime.h"
#include "repair/planner.h"
#include "runtime/testbed.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

constexpr std::uint64_t kBlock = 64ull << 20;
constexpr double kTimeScale = 4.0;  // keeps paced 0.1 Gb/s cross affordable
constexpr int kReps = 2;            // best-of, absorbs scheduler noise

struct Run {
  const char* engine;
  std::size_t slice_size;
  double wall_s;
  std::uint64_t cross_bytes;
  std::uint64_t inner_bytes;
};

struct Fixture {
  rpr::rs::RSCode code{rpr::rs::CodeConfig{12, 4}};
  rpr::topology::PlacedStripe placed = rpr::topology::make_placed_stripe(
      {12, 4}, rpr::topology::PlacementPolicy::kRpr);
  std::vector<rpr::rs::Block> stripe;
  rpr::repair::PlannedRepair planned;

  Fixture() {
    stripe.resize(code.config().total());
    rpr::util::Xoshiro256 rng(0x51705);
    for (std::size_t b = 0; b < code.config().n; ++b) {
      stripe[b].resize(kBlock);
      for (auto& byte : stripe[b]) byte = static_cast<std::uint8_t>(rng());
    }
    code.encode_stripe(stripe);

    rpr::repair::RepairProblem problem;
    problem.code = &code;
    problem.placement = &placed.placement;
    problem.block_size = kBlock;
    problem.failed = {0};
    problem.choose_default_replacements();
    planned = rpr::repair::make_planner(rpr::repair::Scheme::kRpr)
                  ->plan(problem);
  }

  /// The paper's simulator bandwidths (§5.1): 1 Gb/s inner, 0.1 Gb/s cross.
  [[nodiscard]] rpr::runtime::RegionNet net() const {
    return rpr::runtime::RegionNet::uniform(
        placed.cluster.racks(), rpr::util::Bandwidth::gbps(1),
        rpr::util::Bandwidth::gbps(0.1));
  }

  template <typename Engine>
  Run measure(const char* name, Engine&& make, std::size_t slice) const {
    Run run{name, slice, 1e30, 0, 0};
    for (int rep = 0; rep < kReps; ++rep) {
      auto engine = make(slice);
      const auto result =
          engine.execute(planned.plan, planned.outputs, stripe);
      if (result.outputs[0] != stripe[0]) {
        std::fprintf(stderr, "%s reconstruction mismatch (slice %zu)!\n",
                     name, slice);
        std::exit(1);
      }
      const double s = static_cast<double>(result.wall_time.count()) / 1e9;
      if (s < run.wall_s) run.wall_s = s;
      run.cross_bytes = result.cross_rack_bytes;
      run.inner_bytes = result.inner_rack_bytes;
    }
    return run;
  }
};

std::string slice_name(std::size_t slice) {
  if (slice == 0) return "whole";
  return std::to_string(slice >> 10) + "K";
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_pipeline.json";
  Fixture f;

  const std::vector<std::size_t> slices = {0, 16 << 10, 64 << 10, 256 << 10};
  std::vector<Run> runs;

  for (const std::size_t slice : slices) {
    runs.push_back(f.measure(
        "testbed",
        [&](std::size_t s) {
          rpr::runtime::TestbedParams p;
          p.net = f.net();
          p.time_scale = kTimeScale;
          p.decode_matrix_dim = 12;
          p.slice_size = s;
          return rpr::runtime::Testbed(f.placed.cluster, p);
        },
        slice));
  }
  for (const std::size_t slice : slices) {
    runs.push_back(f.measure(
        "tcp",
        [&](std::size_t s) {
          rpr::net::TcpRuntimeParams p;
          p.net = f.net();
          p.time_scale = kTimeScale;
          p.decode_matrix_dim = 12;
          p.slice_size = s;
          return rpr::net::TcpRuntime(f.placed.cluster, p);
        },
        slice));
  }

  const auto whole_of = [&](const char* engine) {
    for (const Run& r : runs) {
      if (r.slice_size == 0 && std::strcmp(r.engine, engine) == 0) {
        return r.wall_s;
      }
    }
    return 0.0;
  };

  std::printf("Slice-pipelined repair — RPR (12,4) single failure, 64 MiB "
              "block,\n1 Gb/s inner / 0.1 Gb/s cross (x%.0f time scale), "
              "best of %d\n\n",
              kTimeScale, kReps);
  rpr::util::TextTable t({"engine", "slice", "wall (s)", "speedup"});
  for (const Run& r : runs) {
    const double speedup = whole_of(r.engine) / r.wall_s;
    t.add_row({r.engine, slice_name(r.slice_size),
               rpr::util::fmt(r.wall_s, 3), rpr::util::fmt(speedup, 2)});
  }
  std::printf("%s\n", t.render().c_str());

  double tcp64 = 0.0;
  for (const Run& r : runs) {
    if (r.slice_size == (64u << 10) && std::strcmp(r.engine, "tcp") == 0) {
      tcp64 = whole_of("tcp") / r.wall_s;
    }
  }
  std::printf("headline: tcp @64K slices is %.2fx whole-block "
              "(acceptance floor 1.40x)\n",
              tcp64);

  if (std::strcmp(json_path, "-") != 0) {
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    char date[64];
    const std::time_t now = std::time(nullptr);
    std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%S+00:00",
                  std::gmtime(&now));
    std::fprintf(out,
                 "{\n  \"context\": {\n"
                 "    \"date\": \"%s\",\n"
                 "    \"executable\": \"./build/bench/pipeline_sweep\",\n"
                 "    \"code\": \"(12,4)\",\n"
                 "    \"scheme\": \"rpr\",\n"
                 "    \"block_size\": %llu,\n"
                 "    \"inner_gbps\": 1.0,\n"
                 "    \"cross_gbps\": 0.1,\n"
                 "    \"time_scale\": %.1f,\n"
                 "    \"reps\": %d\n  },\n  \"benchmarks\": [\n",
                 date, static_cast<unsigned long long>(kBlock), kTimeScale,
                 kReps);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const Run& r = runs[i];
      std::fprintf(out,
                   "    {\n"
                   "      \"name\": \"pipeline/%s/slice:%zu\",\n"
                   "      \"engine\": \"%s\",\n"
                   "      \"slice_size\": %zu,\n"
                   "      \"wall_s\": %.6f,\n"
                   "      \"speedup_vs_whole\": %.4f,\n"
                   "      \"cross_rack_bytes\": %llu,\n"
                   "      \"inner_rack_bytes\": %llu\n    }%s\n",
                   r.engine, r.slice_size, r.engine, r.slice_size, r.wall_s,
                   whole_of(r.engine) / r.wall_s,
                   static_cast<unsigned long long>(r.cross_bytes),
                   static_cast<unsigned long long>(r.inner_bytes),
                   i + 1 == runs.size() ? "" : ",");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  }
  return tcp64 >= 1.4 ? 0 : 2;
}
