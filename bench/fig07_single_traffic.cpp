// Fig. 7: cross-rack traffic for traditional (Tra), CAR and RPR repair of
// single-block failures, six RS configurations, on the simulator.
//
// Paper result: CAR and RPR move the same (much smaller) amount of
// cross-rack data; traditional moves ~n blocks.
#include <cstdio>

#include "bench_support.h"

int main() {
  using namespace rpr;
  const auto params = topology::NetworkParams::simics_like();
  const repair::TraditionalPlanner tra;
  const repair::CarPlanner car;
  const repair::RprPlanner rpr_planner;

  std::printf("Fig. 7 — cross-rack traffic (blocks of 256 MB), single-block "
              "failure,\naveraged over all data-block positions, contiguous "
              "-> RPR placement\n\n");

  util::TextTable t({"code", "Tra", "CAR", "RPR", "CAR==RPR",
                     "RPR vs Tra"});
  for (const auto cfg : bench::single_failure_configs()) {
    const rs::RSCode code(cfg);
    const auto placed =
        topology::make_placed_stripe(cfg, topology::PlacementPolicy::kRpr);
    const auto s_tra = bench::sweep_single(tra, code, placed, params);
    const auto s_car = bench::sweep_single(car, code, placed, params);
    const auto s_rpr = bench::sweep_single(rpr_planner, code, placed, params);
    t.add_row({bench::code_name(cfg), util::fmt(s_tra.traffic.avg, 2),
               util::fmt(s_car.traffic.avg, 2),
               util::fmt(s_rpr.traffic.avg, 2),
               s_car.traffic.avg == s_rpr.traffic.avg ? "yes" : "no",
               bench::pct_reduction(s_tra.traffic.avg, s_rpr.traffic.avg)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("shape check: Tra ~ n - (survivors in the recovery rack); "
              "CAR and RPR ship one\nintermediate per involved non-recovery "
              "rack (the paper reports them equal).\n");
  return 0;
}
