// Fig. 9: total repair time for traditional (Tra) and RPR repair of
// multi-block failures (2 ~ k-1 failures), simulator. The RPR column is the
// average over all failure-position combinations; caps show min/max.
//
// Paper result: RPR reduces total repair time by 40.75% on average and up
// to 64.5% vs the traditional scheme.
#include <cstdio>

#include "bench_support.h"

int main() {
  using namespace rpr;
  const auto params = topology::NetworkParams::simics_like();
  const repair::TraditionalPlanner tra;
  const repair::RprPlanner rpr_planner;

  std::printf("Fig. 9 — total repair time (s), multi-block failures "
              "(non-worst case),\nall failure-position combinations; "
              "(n,k,z) = z failures of an RS(n,k) code\n\n");

  util::TextTable t({"code", "Tra avg (s)", "RPR avg (s)", "RPR min",
                     "RPR max", "avg reduction"});
  double sum_red = 0.0, max_red = 0.0;
  std::size_t rows = 0;
  for (const auto mc : bench::multi_nonworst_configs()) {
    const rs::RSCode code(mc.code);
    const auto placed = topology::make_placed_stripe(
        mc.code, topology::PlacementPolicy::kRpr);
    const auto s_tra =
        bench::sweep_multi(tra, code, placed, mc.z, params);
    const auto s_rpr =
        bench::sweep_multi(rpr_planner, code, placed, mc.z, params);
    const double red = 1.0 - s_rpr.time.avg / s_tra.time.avg;
    const double red_best = 1.0 - s_rpr.time.min / s_tra.time.avg;
    sum_red += red;
    max_red = std::max(max_red, red_best);
    ++rows;
    t.add_row({bench::code_name(mc), util::fmt(s_tra.time.avg, 1),
               util::fmt(s_rpr.time.avg, 1), util::fmt(s_rpr.time.min, 1),
               util::fmt(s_rpr.time.max, 1),
               util::fmt(red * 100, 1) + "%"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("measured: avg reduction %.1f%%, best-case %.1f%%\n",
              sum_red / static_cast<double>(rows) * 100, max_red * 100);
  std::printf("paper:    avg reduction 40.75%%, up to 64.5%%\n");
  return 0;
}
