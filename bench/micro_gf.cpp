// Microbenchmarks for the GF(2^8) region kernels and RS encode throughput.
//
// Context for the paper's cost model: §2.3 assumes an RS decode speed of
// ~1000 MB/s; the XOR kernel is several times faster than the multiply
// kernel, which is what makes the §3.3 XOR fast path worthwhile.
#include <benchmark/benchmark.h>

#include <vector>

#include "gf/gf_region.h"
#include "rs/rs_code.h"
#include "util/rng.h"

namespace {

std::vector<std::uint8_t> random_buf(std::size_t n, std::uint64_t seed) {
  rpr::util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

void BM_XorRegion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto dst = random_buf(n, 1);
  const auto src = random_buf(n, 2);
  for (auto _ : state) {
    rpr::gf::xor_region(dst, src);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_XorRegion)->Arg(64 << 10)->Arg(1 << 20);

void BM_MulRegionAdd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto dst = random_buf(n, 3);
  const auto src = random_buf(n, 4);
  for (auto _ : state) {
    rpr::gf::mul_region_add(0x57, dst, src);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MulRegionAdd)->Arg(64 << 10)->Arg(1 << 20);

void BM_RsEncode(benchmark::State& state) {
  const rpr::rs::CodeConfig cfg{
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(1))};
  const rpr::rs::RSCode code(cfg);
  const std::size_t block = 256 << 10;
  std::vector<rpr::rs::Block> data(cfg.n);
  for (std::size_t i = 0; i < cfg.n; ++i) data[i] = random_buf(block, 10 + i);
  std::vector<rpr::rs::Block> parity(cfg.k);
  for (auto _ : state) {
    code.encode(data, parity);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block * cfg.n));
  state.SetLabel("RS(" + std::to_string(cfg.n) + "," + std::to_string(cfg.k) +
                 ")");
}
BENCHMARK(BM_RsEncode)->Args({6, 3})->Args({12, 4});

}  // namespace

BENCHMARK_MAIN();
