// Microbenchmarks for the GF(2^8) region kernels and RS encode throughput.
//
// Every kernel benchmark is swept across the SIMD dispatch tiers the host
// supports (ArgName "tier": 0=scalar, 1=ssse3, 2=avx2, 3=neon, 4=avx512,
// 5=gfni) so one run
// captures the scalar baseline and each vector tier side by side — that
// ratio is the headline number of the SIMD work, and BENCH_gf.json at the
// repo root is a checked-in capture of this binary's --benchmark_out.
//
// Context for the paper's cost model: §2.3 assumes an RS decode speed of
// ~1000 MB/s; the XOR kernel is several times faster than the multiply
// kernel, which is what makes the §3.3 XOR fast path worthwhile.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "gf/gf65536.h"
#include "gf/gf_region.h"
#include "rs/rs_code.h"
#include "util/rng.h"

namespace gf = rpr::gf;

namespace {

std::vector<std::uint8_t> random_buf(std::size_t n, std::uint64_t seed) {
  rpr::util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

// Selects the tier named by the benchmark arg; skips if the CPU can't run
// it. Restores nothing: every kernel benchmark sets its own tier up front.
bool select_tier(benchmark::State& state, std::int64_t tier_arg) {
  const auto tier = static_cast<gf::SimdTier>(tier_arg);
  if (!gf::set_tier(tier)) {
    state.SkipWithError((std::string(gf::tier_name(tier)) +
                          " unsupported on this CPU").c_str());
    return false;
  }
  state.SetLabel(gf::tier_name(tier));
  return true;
}

void for_each_supported_tier(benchmark::internal::Benchmark* b) {
  b->ArgNames({"bytes", "tier"});
  for (const auto bytes : {64 << 10, 1 << 20}) {
    for (const gf::SimdTier tier : gf::supported_tiers()) {
      b->Args({bytes, static_cast<std::int64_t>(tier)});
    }
  }
}

void BM_XorRegion(benchmark::State& state) {
  if (!select_tier(state, state.range(1))) return;
  const auto n = static_cast<std::size_t>(state.range(0));
  auto dst = random_buf(n, 1);
  const auto src = random_buf(n, 2);
  for (auto _ : state) {
    gf::xor_region(dst, src);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_XorRegion)->Apply(for_each_supported_tier);

void BM_MulRegionAdd(benchmark::State& state) {
  if (!select_tier(state, state.range(1))) return;
  const auto n = static_cast<std::size_t>(state.range(0));
  auto dst = random_buf(n, 3);
  const auto src = random_buf(n, 4);
  for (auto _ : state) {
    gf::mul_region_add(0x57, dst, src);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MulRegionAdd)->Apply(for_each_supported_tier);

// GF(2^16) byte-planar region multiply-accumulate (wide codes: one symbol
// per 2 bytes). Tiers without a 16-bit kernel (scalar) fall back to the
// product-table path inside gf16::mul_region_add, so the sweep captures
// the scalar baseline and each vector tier side by side like the GF(2^8)
// rows. The region length is offset by one word so every vector tier also
// runs its sub-block tail epilogue.
void BM_Gf16MulRegionAdd(benchmark::State& state) {
  if (!select_tier(state, state.range(1))) return;
  const auto n = static_cast<std::size_t>(state.range(0)) + 2;
  auto dst = random_buf(n, 5);
  const auto src = random_buf(n, 6);
  for (auto _ : state) {
    rpr::gf16::mul_region_add(0x1B57, dst, src);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Gf16MulRegionAdd)->Apply(for_each_supported_tier);

// Fused multi-source accumulate with the RS(6,3) source count: one pass
// over six sources, destination written once.
void BM_MulRegionAddMulti(benchmark::State& state) {
  if (!select_tier(state, state.range(1))) return;
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kSources = 6;
  std::vector<std::vector<std::uint8_t>> sources;
  std::vector<const std::uint8_t*> ptrs;
  for (std::size_t s = 0; s < kSources; ++s) {
    sources.push_back(random_buf(n, 10 + s));
    ptrs.push_back(sources.back().data());
  }
  const std::vector<std::uint8_t> coeffs = {0x57, 0x8E, 0x01, 0xC3, 0x2B, 0x74};
  auto dst = random_buf(n, 20);
  for (auto _ : state) {
    gf::mul_region_add_multi(coeffs, ptrs.data(), dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * kSources));
}
BENCHMARK(BM_MulRegionAddMulti)->Apply(for_each_supported_tier);

// The fused-vs-unfused comparison the acceptance bar asks for: apply the
// RS(6,3) parity matrix via encode_regions (each parity cache line written
// once) vs the traditional per-source mul_region_add loop (written six
// times). Same tier, same data; only the loop structure differs.
void BM_EncodeRegionsFused(benchmark::State& state) {
  if (!select_tier(state, state.range(1))) return;
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kRows = 3, kCols = 6;
  const auto matrix = random_buf(kRows * kCols, 30);
  std::vector<std::vector<std::uint8_t>> data;
  std::vector<const std::uint8_t*> srcs;
  for (std::size_t j = 0; j < kCols; ++j) {
    data.push_back(random_buf(n, 40 + j));
    srcs.push_back(data.back().data());
  }
  std::vector<std::vector<std::uint8_t>> out(kRows,
                                             std::vector<std::uint8_t>(n));
  std::vector<std::uint8_t*> dsts;
  for (auto& o : out) dsts.push_back(o.data());
  for (auto _ : state) {
    gf::encode_regions(matrix, kRows, kCols, srcs.data(), dsts.data(), n);
    benchmark::DoNotOptimize(dsts.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * kCols));
}
BENCHMARK(BM_EncodeRegionsFused)->Apply(for_each_supported_tier);

void BM_EncodeRegionsPerSource(benchmark::State& state) {
  if (!select_tier(state, state.range(1))) return;
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kRows = 3, kCols = 6;
  const auto matrix = random_buf(kRows * kCols, 30);
  std::vector<std::vector<std::uint8_t>> data;
  for (std::size_t j = 0; j < kCols; ++j) data.push_back(random_buf(n, 40 + j));
  std::vector<std::vector<std::uint8_t>> out(kRows,
                                             std::vector<std::uint8_t>(n));
  for (auto _ : state) {
    for (std::size_t r = 0; r < kRows; ++r) {
      std::fill(out[r].begin(), out[r].end(), std::uint8_t{0});
      for (std::size_t j = 0; j < kCols; ++j) {
        gf::mul_region_add(matrix[r * kCols + j], out[r], data[j]);
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * kCols));
}
BENCHMARK(BM_EncodeRegionsPerSource)->Apply(for_each_supported_tier);

// Full codec path: fused kernels + thread-pool sharding, on the dispatch
// default tier (what production callers get).
void BM_RsEncode(benchmark::State& state) {
  gf::set_tier(gf::best_tier());
  const rpr::rs::CodeConfig cfg{
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(1))};
  const rpr::rs::RSCode code(cfg);
  const std::size_t block = 256 << 10;
  std::vector<rpr::rs::Block> data(cfg.n);
  for (std::size_t i = 0; i < cfg.n; ++i) data[i] = random_buf(block, 10 + i);
  std::vector<rpr::rs::Block> parity(cfg.k);
  for (auto _ : state) {
    code.encode(data, parity);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block * cfg.n));
  state.SetLabel("RS(" + std::to_string(cfg.n) + "," + std::to_string(cfg.k) +
                 ") " + gf::tier_name(gf::active_tier()));
}
BENCHMARK(BM_RsEncode)->Args({6, 3})->Args({12, 4});

}  // namespace

BENCHMARK_MAIN();
