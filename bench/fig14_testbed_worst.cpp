// Fig. 14: total repair time for traditional (Tra) and RPR repair in the
// multi-block worst case (k failures) on the threaded testbed with Table-1
// bandwidths; avg with min/max caps over sampled failure positions.
//
// Paper result: RPR reduces total repair time by 20.6% on average and up to
// 32.8% vs the traditional scheme.
#include <cstdio>

#include "testbed_support.h"

int main() {
  using namespace rpr;
  const repair::TraditionalPlanner tra;

  std::printf("Fig. 14 — total repair time (wall ms, links x%.0f), worst "
              "case (k failures),\ntestbed, codes with (n+k)/k > 3, sampled "
              "failure-position combinations\n\n",
              bench::kTestbedScale);

  util::TextTable t({"code", "Tra avg", "RPR avg", "RPR min", "RPR max",
                     "avg reduction"});
  double sum_red = 0.0, max_red = 0.0;
  std::size_t rows = 0;
  for (const auto mc : bench::multi_worst_configs()) {
    const rs::RSCode code(mc.code);
    const auto placed = topology::make_placed_stripe(
        mc.code, topology::PlacementPolicy::kRpr);
    const auto rpr_planner = bench::hetero_rpr_planner(placed.cluster.racks());
    const auto stripe = bench::testbed_stripe(code);
    const auto patterns =
        bench::sample_patterns(mc.code.total(), mc.z, /*want=*/5);

    bench::SweepStats s_tra, s_rpr;
    for (const auto& failed : patterns) {
      s_tra.add(bench::run_testbed_ms(tra, code, placed, failed, stripe));
      s_rpr.add(
          bench::run_testbed_ms(rpr_planner, code, placed, failed, stripe));
    }
    const double red = 1.0 - s_rpr.avg / s_tra.avg;
    const double red_best = 1.0 - s_rpr.min / s_tra.avg;
    sum_red += red;
    max_red = std::max(max_red, red_best);
    ++rows;
    t.add_row({bench::code_name(mc), util::fmt(s_tra.avg, 1),
               util::fmt(s_rpr.avg, 1), util::fmt(s_rpr.min, 1),
               util::fmt(s_rpr.max, 1), util::fmt(red * 100, 1) + "%"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("measured: avg reduction %.1f%%, best-case %.1f%%\n",
              sum_red / static_cast<double>(rows) * 100, max_red * 100);
  std::printf("paper:    avg reduction 20.6%%, up to 32.8%%\n");
  return 0;
}
