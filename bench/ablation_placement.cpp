// Ablation: the §3.3 data pre-placement + XOR-set selection.
//
// Compares, for single data-block failures on the simulator:
//   (a) contiguous placement + rack-minimal selection (no §3.3),
//   (b) contiguous placement + XOR-set preference (fast decode only),
//   (c) RPR placement + XOR-set preference (full §3.3).
//
// Reported per variant: average repair time, average cross-rack traffic,
// and the fraction of failure positions that avoided building a decoding
// matrix. The time effect is deliberately small (decode is ~0.2 s against
// ~45 s of transfers at 256 MB — the paper says the same; the real payoff
// shows on the testbed where the matrix decode path is genuinely ~4x
// slower); the point of §3.3 is that the XOR path is free: no extra
// traffic, no extra time, and the matrix build disappears.
#include <cstdio>

#include "bench_support.h"

namespace {

struct VariantStats {
  double time_avg = 0;
  double traffic_avg = 0;
  double no_matrix_rate = 0;
};

VariantStats sweep(const rpr::repair::RprPlanner& planner,
                   const rpr::rs::RSCode& code,
                   const rpr::topology::PlacedStripe& placed,
                   const rpr::topology::NetworkParams& params) {
  using namespace rpr;
  VariantStats out;
  const auto& cfg = code.config();
  for (std::size_t f = 0; f < cfg.n; ++f) {
    repair::RepairProblem problem;
    problem.code = &code;
    problem.placement = &placed.placement;
    problem.block_size = bench::kPaperBlock;
    problem.failed = {f};
    problem.choose_default_replacements();
    const auto planned = planner.plan(problem);
    const auto sim = repair::simulate(planned.plan, placed.cluster, params);
    out.time_avg += util::to_sec(sim.total_repair_time);
    out.traffic_avg += static_cast<double>(sim.cross_rack_bytes) /
                       static_cast<double>(bench::kPaperBlock);
    if (!planned.used_decoding_matrix) out.no_matrix_rate += 1.0;
  }
  out.time_avg /= static_cast<double>(cfg.n);
  out.traffic_avg /= static_cast<double>(cfg.n);
  out.no_matrix_rate /= static_cast<double>(cfg.n);
  return out;
}

}  // namespace

int main() {
  using namespace rpr;
  const auto params = topology::NetworkParams::simics_like();

  repair::RprOptions no_xor;
  no_xor.prefer_xor_set = false;
  const repair::RprPlanner planner_no_xor(no_xor);
  const repair::RprPlanner planner_xor;

  std::printf("Ablation — §3.3 pre-placement & XOR fast path, single "
              "data-block failures,\nsimulator, averaged over positions; "
              "no-matrix = fraction of repairs that skip\nbuilding the "
              "decoding matrix\n\n");

  util::TextTable t({"code", "time a/b/c (s)", "traffic a/b/c",
                     "no-matrix a", "no-matrix b", "no-matrix c"});
  for (const auto cfg : bench::single_failure_configs()) {
    const rs::RSCode code(cfg);
    const auto contig = topology::make_placed_stripe(
        cfg, topology::PlacementPolicy::kContiguous);
    const auto rprp =
        topology::make_placed_stripe(cfg, topology::PlacementPolicy::kRpr);

    const auto a = sweep(planner_no_xor, code, contig, params);
    const auto b = sweep(planner_xor, code, contig, params);
    const auto c = sweep(planner_xor, code, rprp, params);

    t.add_row({bench::code_name(cfg),
               util::fmt(a.time_avg, 2) + "/" + util::fmt(b.time_avg, 2) +
                   "/" + util::fmt(c.time_avg, 2),
               util::fmt(a.traffic_avg, 1) + "/" +
                   util::fmt(b.traffic_avg, 1) + "/" +
                   util::fmt(c.traffic_avg, 1),
               util::fmt(a.no_matrix_rate * 100, 0) + "%",
               util::fmt(b.no_matrix_rate * 100, 0) + "%",
               util::fmt(c.no_matrix_rate * 100, 0) + "%"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("shape check: variants b/c avoid the decoding matrix for "
              "every data-block failure\nat identical traffic; the time "
              "delta at 256 MB is the t_wd - t_nd = ~0.19 s the\npaper's "
              "analysis neglects (and the EC2 testbed magnifies).\n");
  return 0;
}
