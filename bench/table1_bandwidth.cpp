// Table 1: inter- and intra-region bandwidths (Mbps), measured through the
// threaded testbed's paced channels. The configured matrix is the paper's
// Table 1; the measurement validates that the testbed links actually
// deliver those rates (within pacing overhead).
#include <cstdio>

#include "runtime/testbed.h"
#include "util/table.h"

int main() {
  using namespace rpr;

  const std::size_t regions = runtime::kRegionCount;
  runtime::TestbedParams params;
  params.net = runtime::RegionNet::ec2_table1(regions);
  params.time_scale = 256.0;  // keep the measurement quick
  runtime::Testbed bed(topology::Cluster(regions, 1, 0), params);

  std::printf("Table 1 — inter-/intra-region bandwidths (Mbps) measured "
              "through the testbed\n(configured from the paper's Table 1; "
              "racks impersonate EC2 regions)\n\n");

  std::vector<std::string> header = {""};
  for (const auto name : runtime::kRegionNames) header.emplace_back(name);
  util::TextTable t(std::move(header));
  const std::uint64_t probe = 64ull << 20;  // 64 MiB probe per pair
  for (std::size_t i = 0; i < regions; ++i) {
    std::vector<std::string> row = {std::string(runtime::kRegionNames[i])};
    for (std::size_t j = 0; j < regions; ++j) {
      if (j < i) {
        row.emplace_back("");  // the paper prints the upper triangle
        continue;
      }
      row.push_back(util::fmt(bed.measure_mbps(i, j, probe), 1));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("configured averages: intra %.2f Mbps, cross %.2f Mbps, "
              "ratio %.2f\n",
              params.net.mean_intra_mbps(), params.net.mean_cross_mbps(),
              params.net.mean_intra_mbps() / params.net.mean_cross_mbps());
  std::printf("paper:               intra 600.97 Mbps, cross 53.03 Mbps, "
              "ratio 11.32\n");
  return 0;
}
