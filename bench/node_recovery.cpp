// Extension bench: whole-node recovery and load balance.
//
// The paper's motivation (§1, §2.3): when a storage node dies, every stripe
// with a block on it needs repair, the recovery point's downlink becomes
// the bottleneck, and the data center goes load-imbalanced. This bench
// places many rack-rotated RS(8,4) stripes, kills one node, and repairs all
// damaged stripes concurrently under each scheme, reporting the fleet
// makespan and the per-rack cross-rack upload distribution.
#include <cstdio>

#include "bench_support.h"
#include "repair/fleet.h"

int main() {
  using namespace rpr;
  const rs::CodeConfig cfg{8, 4};
  const rs::RSCode code(cfg);
  const auto params = topology::NetworkParams::simics_like();

  const std::size_t stripes = 30;
  const topology::Cluster cluster(cfg.racks_when_full(), cfg.k, cfg.k);

  // Rack-rotated placements, like consecutive stripes in production.
  const topology::Placement base =
      topology::make_placement(cluster, cfg, topology::PlacementPolicy::kRpr);
  std::vector<topology::Placement> placements;
  placements.reserve(stripes);
  for (std::size_t s = 0; s < stripes; ++s) {
    std::vector<topology::NodeId> nodes(cfg.total());
    for (std::size_t b = 0; b < cfg.total(); ++b) {
      const auto node = base.node_of(b);
      const auto rack = (cluster.rack_of(node) + s) % cluster.racks();
      nodes[b] = rack * cluster.nodes_per_rack() +
                 node % cluster.nodes_per_rack();
    }
    placements.emplace_back(cluster, cfg, std::move(nodes));
  }

  // Kill one node; collect the repair problem of every damaged stripe.
  const topology::NodeId dead = cluster.slot(0, 0);
  repair::FleetProblem fleet;
  for (const auto& placement : placements) {
    for (std::size_t b = 0; b < cfg.total(); ++b) {
      if (placement.node_of(b) != dead) continue;
      repair::RepairProblem p;
      p.code = &code;
      p.placement = &placement;
      p.block_size = bench::kPaperBlock;
      p.failed = {b};
      p.choose_default_replacements();
      fleet.stripes.push_back(std::move(p));
      break;
    }
  }

  std::printf("Node recovery — %zu rack-rotated RS(8,4) stripes, node %zu "
              "fails, %zu stripes\ndamaged, repaired concurrently; 256 MB "
              "blocks, 10:1 bandwidth\n\n",
              stripes, dead, fleet.stripes.size());

  util::TextTable t({"scheme", "makespan (s)", "cross GB", "max/mean up",
                     "max/mean down", "down CV"});
  double tra_makespan = 0;
  for (const auto scheme : {repair::Scheme::kTraditional, repair::Scheme::kCar,
                            repair::Scheme::kRpr}) {
    const auto planner = repair::make_planner(scheme);
    const auto out =
        repair::simulate_fleet(*planner, fleet, cluster, params);
    if (scheme == repair::Scheme::kTraditional) {
      tra_makespan = util::to_sec(out.makespan);
    }
    t.add_row({planner->name(), util::fmt(util::to_sec(out.makespan), 1),
               util::fmt(static_cast<double>(out.cross_rack_bytes) / 1e9, 1),
               util::fmt(out.upload_imbalance, 2),
               util::fmt(out.download_imbalance, 2),
               util::fmt(out.download_cv, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("shape check: traditional funnels every download into the "
              "dead node's rack\n(max/mean down near the rack count); "
              "rack-aware schemes spread the load and\nfinish the wave "
              "several times faster (Tra makespan here: %.1f s).\n",
              tra_makespan);
  return 0;
}
