// Decode-path microbenchmark: the §3.3 claim.
//
// The paper observes that building the decoding matrix plus running the
// generic GF decode is ~4x slower than the XOR-only path (t_wd = 4 t_nd;
// on EC2, ~20 s vs ~2.5 s for 256 MB blocks, §5.2.1). This bench times both
// paths of *this* implementation on a single-block repair:
//
//   XOR path    — coefficients all 1 (surviving data + P0): word-wide XORs;
//   matrix path — invert the survivor submatrix, then general table-lookup
//                 passes for every coefficient, including 1s (how a generic
//                 decoder like Jerasure's applies its decoding matrix);
//   fused path  — the same repair equation through mul_region_add_multi,
//                 all sources accumulated in one destination pass.
//
// Each path is swept across the SIMD dispatch tiers the host supports
// (ArgName "tier": 0=scalar, 1=ssse3, 2=avx2, 3=neon).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "gf/gf_region.h"
#include "matrix/matrix.h"
#include "rs/rs_code.h"
#include "util/rng.h"

namespace gf = rpr::gf;

namespace {

std::vector<rpr::rs::Block> make_stripe(const rpr::rs::RSCode& code,
                                        std::size_t block) {
  rpr::util::Xoshiro256 rng(77);
  std::vector<rpr::rs::Block> stripe(code.config().total());
  for (std::size_t b = 0; b < code.config().n; ++b) {
    stripe[b].resize(block);
    for (auto& byte : stripe[b]) byte = static_cast<std::uint8_t>(rng());
  }
  code.encode_stripe(stripe);
  return stripe;
}

bool select_tier(benchmark::State& state, std::int64_t tier_arg) {
  const auto tier = static_cast<gf::SimdTier>(tier_arg);
  if (!gf::set_tier(tier)) {
    state.SkipWithError((std::string(gf::tier_name(tier)) +
                          " unsupported on this CPU").c_str());
    return false;
  }
  state.SetLabel(gf::tier_name(tier));
  return true;
}

void for_each_supported_tier(benchmark::internal::Benchmark* b) {
  b->ArgNames({"bytes", "tier"});
  for (const auto bytes : {1 << 20, 16 << 20}) {
    for (const gf::SimdTier tier : gf::supported_tiers()) {
      b->Args({bytes, static_cast<std::int64_t>(tier)});
    }
  }
}

void BM_DecodeXorPath(benchmark::State& state) {
  if (!select_tier(state, state.range(1))) return;
  const rpr::rs::CodeConfig cfg{12, 4};
  const rpr::rs::RSCode code(cfg);
  const auto block = static_cast<std::size_t>(state.range(0));
  const auto stripe = make_stripe(code, block);
  const std::vector<std::size_t> failed = {1};
  const auto selected = code.default_selection(failed);  // XOR set
  const auto eq = code.repair_equations(failed, selected)[0];

  rpr::rs::Block out(block);
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0);
    for (std::size_t i = 0; i < eq.sources.size(); ++i) {
      gf::mul_region_add(eq.coefficients[i], out, stripe[eq.sources[i]]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(block * eq.sources.size()));
}
BENCHMARK(BM_DecodeXorPath)->Apply(for_each_supported_tier);

void BM_DecodeMatrixPath(benchmark::State& state) {
  if (!select_tier(state, state.range(1))) return;
  const rpr::rs::CodeConfig cfg{12, 4};
  const rpr::rs::RSCode code(cfg);
  const auto block = static_cast<std::size_t>(state.range(0));
  const auto stripe = make_stripe(code, block);
  const std::vector<std::size_t> failed = {1};
  const auto selected = code.default_selection(failed);

  rpr::rs::Block out(block);
  for (auto _ : state) {
    // Build the decoding matrix every time (the generic decoder does).
    const auto sub = code.generator().select_rows(selected);
    const auto inv = sub.inverted();
    benchmark::DoNotOptimize(inv->at(0, 0));
    const auto eq = code.repair_equations(failed, selected)[0];
    std::fill(out.begin(), out.end(), 0);
    for (std::size_t i = 0; i < eq.sources.size(); ++i) {
      gf::mul_region_add_general(eq.coefficients[i], out,
                                 stripe[eq.sources[i]]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(block * selected.size()));
}
BENCHMARK(BM_DecodeMatrixPath)->Apply(for_each_supported_tier);

// Same repair equation as the XOR path, but evaluated through the fused
// multi-source kernel: every destination cache line written once total
// instead of once per source.
void BM_DecodeFusedPath(benchmark::State& state) {
  if (!select_tier(state, state.range(1))) return;
  const rpr::rs::CodeConfig cfg{12, 4};
  const rpr::rs::RSCode code(cfg);
  const auto block = static_cast<std::size_t>(state.range(0));
  const auto stripe = make_stripe(code, block);
  const std::vector<std::size_t> failed = {1};
  const auto selected = code.default_selection(failed);
  const auto eq = code.repair_equations(failed, selected)[0];

  std::vector<const std::uint8_t*> srcs;
  for (const std::size_t s : eq.sources) srcs.push_back(stripe[s].data());
  rpr::rs::Block out(block);
  std::uint8_t* dst = out.data();
  for (auto _ : state) {
    gf::encode_regions(eq.coefficients, 1, srcs.size(), srcs.data(), &dst,
                       block);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(block * eq.sources.size()));
}
BENCHMARK(BM_DecodeFusedPath)->Apply(for_each_supported_tier);

// Production decode entry point: sharded across the thread pool on the
// dispatch default tier.
void BM_DecodeFullBlock(benchmark::State& state) {
  gf::set_tier(gf::best_tier());
  const rpr::rs::CodeConfig cfg{12, 4};
  const rpr::rs::RSCode code(cfg);
  const auto block = static_cast<std::size_t>(state.range(0));
  const auto original = make_stripe(code, block);
  const std::vector<std::size_t> failed = {1};
  for (auto _ : state) {
    state.PauseTiming();
    auto stripe = original;
    stripe[1].assign(block, 0);
    state.ResumeTiming();
    const bool ok = code.decode(stripe, failed);
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block * cfg.n));
  state.SetLabel(std::string("RS(12,4) ") + gf::tier_name(gf::active_tier()));
}
BENCHMARK(BM_DecodeFullBlock)->Arg(1 << 20)->Arg(16 << 20);

}  // namespace

BENCHMARK_MAIN();
