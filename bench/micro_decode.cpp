// Decode-path microbenchmark: the §3.3 claim.
//
// The paper observes that building the decoding matrix plus running the
// generic GF decode is ~4x slower than the XOR-only path (t_wd = 4 t_nd;
// on EC2, ~20 s vs ~2.5 s for 256 MB blocks, §5.2.1). This bench times both
// paths of *this* implementation on a single-block repair:
//
//   XOR path    — coefficients all 1 (surviving data + P0): word-wide XORs;
//   matrix path — invert the survivor submatrix, then general table-lookup
//                 passes for every coefficient, including 1s (how a generic
//                 decoder like Jerasure's applies its decoding matrix).
#include <benchmark/benchmark.h>

#include <vector>

#include "gf/gf_region.h"
#include "matrix/matrix.h"
#include "rs/rs_code.h"
#include "util/rng.h"

namespace {

std::vector<rpr::rs::Block> make_stripe(const rpr::rs::RSCode& code,
                                        std::size_t block) {
  rpr::util::Xoshiro256 rng(77);
  std::vector<rpr::rs::Block> stripe(code.config().total());
  for (std::size_t b = 0; b < code.config().n; ++b) {
    stripe[b].resize(block);
    for (auto& byte : stripe[b]) byte = static_cast<std::uint8_t>(rng());
  }
  code.encode_stripe(stripe);
  return stripe;
}

void BM_DecodeXorPath(benchmark::State& state) {
  const rpr::rs::CodeConfig cfg{12, 4};
  const rpr::rs::RSCode code(cfg);
  const auto block = static_cast<std::size_t>(state.range(0));
  const auto stripe = make_stripe(code, block);
  const std::vector<std::size_t> failed = {1};
  const auto selected = code.default_selection(failed);  // XOR set
  const auto eq = code.repair_equations(failed, selected)[0];

  rpr::rs::Block out(block);
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0);
    for (std::size_t i = 0; i < eq.sources.size(); ++i) {
      rpr::gf::mul_region_add(eq.coefficients[i], out,
                              stripe[eq.sources[i]]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(block * eq.sources.size()));
}
BENCHMARK(BM_DecodeXorPath)->Arg(1 << 20)->Arg(16 << 20);

void BM_DecodeMatrixPath(benchmark::State& state) {
  const rpr::rs::CodeConfig cfg{12, 4};
  const rpr::rs::RSCode code(cfg);
  const auto block = static_cast<std::size_t>(state.range(0));
  const auto stripe = make_stripe(code, block);
  const std::vector<std::size_t> failed = {1};
  const auto selected = code.default_selection(failed);

  rpr::rs::Block out(block);
  for (auto _ : state) {
    // Build the decoding matrix every time (the generic decoder does).
    const auto sub = code.generator().select_rows(selected);
    const auto inv = sub.inverted();
    benchmark::DoNotOptimize(inv->at(0, 0));
    const auto eq = code.repair_equations(failed, selected)[0];
    std::fill(out.begin(), out.end(), 0);
    for (std::size_t i = 0; i < eq.sources.size(); ++i) {
      rpr::gf::mul_region_add_general(eq.coefficients[i], out,
                                      stripe[eq.sources[i]]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(block * selected.size()));
}
BENCHMARK(BM_DecodeMatrixPath)->Arg(1 << 20)->Arg(16 << 20);

}  // namespace

BENCHMARK_MAIN();
