// Fleet scheduler sweep: the repair-share trade-off curves the scheduler
// subsystem (sched/scheduler.h) exists to navigate.
//
// Scenario: an RS(14,10) fleet loses node 0, damaging every stripe that
// kept a block there. The damaged stripes queue through admission control
// while a synthetic foreground read load runs and a probe read hits each
// stripe's lost block shortly after the failure. Three curves come out:
//
//  * Foreground protection. With the arbiter off (repair share 1.0) the
//    recovery wave saturates every port and foreground p99 blows up past
//    kFgProtectionBound x the idle baseline. At the arbitrated shares the
//    repair class is capped, foreground traffic rides the unthrottled
//    class, and p99 stays within the bound. Both sides are hard gates:
//    the sweep fails if arbitration stops protecting foreground reads OR
//    if the unarbitrated wave stops hurting them (which would mean the
//    arbiter solves a non-problem).
//  * Repair cost. The same shares stretch the wave's completion
//    percentiles and cut rebuilt throughput — the price of protection,
//    reported so the curve documents both sides of the knob.
//  * Degraded reads. At the production share (0.25), answering lost-block
//    reads from the in-flight repair (banked slices / promoted one-block
//    plans) must beat DegradedPolicy::kWaitForCommit by >= 2x at p50 —
//    the third hard gate, and the reason the read path exists.
//
// BENCH_fleet.json at the repo root is a checked-in capture of this
// binary's JSON output (first argument, default "BENCH_fleet.json"; "-"
// skips the file). CI re-runs the sweep and bench_diff's the fresh JSON
// against the baseline warn-only; the three gates above are the binary's
// own exit code and always hard.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "sched/scheduler.h"
#include "topology/placement.h"
#include "util/table.h"

namespace {

using rpr::repair::RepairProblem;
using rpr::sched::DegradedPolicy;
using rpr::sched::FleetSchedOutcome;
using rpr::sched::FleetWorkload;
using rpr::sched::ReadEvent;
using rpr::sched::SchedulerOptions;
using rpr::sched::StripeArrival;
using rpr::topology::Cluster;
using rpr::topology::NetworkParams;
using rpr::topology::Placement;

constexpr rpr::rs::CodeConfig kCfg{14, 10};
constexpr std::uint64_t kBlock = 64ull << 20;
constexpr std::size_t kStripes = 12;
constexpr std::size_t kSlice = 1 << 20;
constexpr std::size_t kMaxInflight = 2;
constexpr double kFgQps = 50.0;
constexpr double kFgDuration = 30.0;
constexpr std::uint64_t kFgReadSize = 4ull << 20;
constexpr double kProbeAt = 0.2;  ///< lost-block probe time, seconds
/// Foreground p99 must stay within this factor of the idle baseline when
/// arbitrated, and must exceed it when the arbiter is off.
constexpr double kFgProtectionBound = 4.0;
constexpr double kDegradedFloor = 2.0;  ///< serve vs wait p50 ratio

/// The rack-rotated damaged fleet: node 0 died, each stripe repairs
/// whichever block it kept there (same construction as rpr_sim --fleet).
struct Fleet {
  rpr::rs::RSCode code{kCfg};
  Cluster cluster{kCfg.racks_when_full(), kCfg.k, kCfg.k};
  std::vector<Placement> placements;
  FleetWorkload damaged;

  Fleet() {
    const Placement base = rpr::topology::make_placement(
        cluster, kCfg, rpr::topology::PlacementPolicy::kRpr);
    placements.reserve(kStripes);
    for (std::size_t s = 0; s < kStripes; ++s) {
      std::vector<rpr::topology::NodeId> nodes(kCfg.total());
      std::size_t failed = s % kCfg.total();
      for (std::size_t b = 0; b < kCfg.total(); ++b) {
        const auto node = base.node_of(b);
        const auto rack = (cluster.rack_of(node) + s) % cluster.racks();
        nodes[b] = rack * cluster.nodes_per_rack() +
                   node % cluster.nodes_per_rack();
        if (nodes[b] == 0) failed = b;
      }
      placements.emplace_back(cluster, kCfg, std::move(nodes));
      StripeArrival arrival;
      arrival.problem.code = &code;
      arrival.problem.placement = &placements.back();
      arrival.problem.block_size = kBlock;
      arrival.problem.failed = {failed};
      arrival.problem.choose_default_replacements();
      damaged.stripes.push_back(std::move(arrival));
    }
    damaged.foreground.qps = kFgQps;
    damaged.foreground.duration_s = kFgDuration;
    damaged.foreground.read_size = kFgReadSize;
    damaged.foreground.seed = 7;
    // Probe every lost block shortly after the failure wave, from a
    // reader outside the recovery racks.
    const auto reader =
        static_cast<rpr::topology::NodeId>(cluster.total_nodes() - 1);
    for (std::size_t s = 0; s < kStripes; ++s) {
      damaged.reads.push_back(ReadEvent{
          kProbeAt, s, damaged.stripes[s].problem.failed[0], reader});
    }
  }

  /// Same cluster and read load with nothing damaged: the idle baseline.
  [[nodiscard]] FleetWorkload idle() const {
    FleetWorkload w = damaged;
    w.reads.clear();
    for (StripeArrival& s : w.stripes) {
      s.problem.failed.clear();
      s.problem.replacements.clear();
    }
    return w;
  }
};

struct Row {
  std::string name;
  FleetSchedOutcome out;
  double fg_p99_vs_idle = 0.0;
};

FleetSchedOutcome run(const Fleet& fleet, const FleetWorkload& w,
                      double share, DegradedPolicy degraded) {
  SchedulerOptions opts;
  opts.max_inflight = kMaxInflight;
  opts.repair_share = share;
  opts.slice_size = kSlice;
  opts.degraded = degraded;
  return rpr::sched::run_fleet(w, fleet.cluster, NetworkParams{}, opts);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_fleet.json";

  const Fleet fleet;
  const FleetWorkload idle_w = fleet.idle();

  std::vector<Row> rows;
  const FleetSchedOutcome idle =
      run(fleet, idle_w, 1.0, DegradedPolicy::kServe);
  rows.push_back({"fleet/idle", idle, 1.0});

  const double shares[] = {1.0, 0.5, 0.25};
  for (const double share : shares) {
    FleetSchedOutcome out =
        run(fleet, fleet.damaged, share, DegradedPolicy::kServe);
    char name[48];
    std::snprintf(name, sizeof name, "fleet/share:%.2f", share);
    const double ratio = idle.foreground_p99_s > 0.0
                             ? out.foreground_p99_s / idle.foreground_p99_s
                             : 0.0;
    rows.push_back({name, std::move(out), ratio});
  }
  {
    FleetSchedOutcome out =
        run(fleet, fleet.damaged, 0.25, DegradedPolicy::kWaitForCommit);
    const double ratio = idle.foreground_p99_s > 0.0
                             ? out.foreground_p99_s / idle.foreground_p99_s
                             : 0.0;
    rows.push_back({"fleet/share:0.25-wait", std::move(out), ratio});
  }

  rpr::util::TextTable table(
      {"run", "makespan s", "compl p50", "compl p99", "fg p99 s",
       "fg/idle", "degr p50", "degr p99", "MB/s rebuilt"});
  for (const Row& r : rows) {
    table.add_row({r.name, rpr::util::fmt(r.out.makespan_s, 1),
                   rpr::util::fmt(r.out.completion_p50_s, 1),
                   rpr::util::fmt(r.out.completion_p99_s, 1),
                   rpr::util::fmt(r.out.foreground_p99_s, 3),
                   rpr::util::fmt(r.fg_p99_vs_idle, 2),
                   rpr::util::fmt(r.out.degraded_p50_s, 2),
                   rpr::util::fmt(r.out.degraded_p99_s, 2),
                   rpr::util::fmt(r.out.repair_throughput_bps / 8e6, 1)});
  }
  std::fputs(table.render().c_str(), stdout);

  // ---- the three hard gates -------------------------------------------
  const Row& unarb = rows[1];     // share 1.00
  const Row& arb = rows[3];       // share 0.25, serve
  const Row& wait = rows.back();  // share 0.25, wait-for-commit
  const double degr_ratio =
      arb.out.degraded_p50_s > 0.0
          ? wait.out.degraded_p50_s / arb.out.degraded_p50_s
          : 0.0;
  std::printf(
      "headline: unarbitrated fg p99 %.1fx idle, share-0.25 %.1fx idle "
      "(bound %.1fx); degraded serve beats wait-for-commit %.1fx at p50 "
      "(floor %.1fx)\n",
      unarb.fg_p99_vs_idle, arb.fg_p99_vs_idle, kFgProtectionBound,
      degr_ratio, kDegradedFloor);

  bool ok = true;
  if (arb.fg_p99_vs_idle > kFgProtectionBound) {
    std::fprintf(stderr,
                 "FAIL: arbitrated foreground p99 %.2fx idle exceeds the "
                 "%.1fx protection bound\n",
                 arb.fg_p99_vs_idle, kFgProtectionBound);
    ok = false;
  }
  if (unarb.fg_p99_vs_idle <= kFgProtectionBound) {
    std::fprintf(stderr,
                 "FAIL: unarbitrated foreground p99 %.2fx idle does not "
                 "exceed %.1fx — the arbiter is protecting against "
                 "nothing\n",
                 unarb.fg_p99_vs_idle, kFgProtectionBound);
    ok = false;
  }
  if (degr_ratio < kDegradedFloor) {
    std::fprintf(stderr,
                 "FAIL: degraded serve only %.2fx better than "
                 "wait-for-commit at p50 (floor %.1fx)\n",
                 degr_ratio, kDegradedFloor);
    ok = false;
  }

  if (std::strcmp(json_path, "-") != 0) {
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    char date[64];
    const std::time_t now = std::time(nullptr);
    std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%S+00:00",
                  std::gmtime(&now));
    std::fprintf(
        out,
        "{\n  \"context\": {\n"
        "    \"date\": \"%s\",\n"
        "    \"executable\": \"./build/bench/fleet_sweep\",\n"
        "    \"scenario\": \"RS(14,10), %zu damaged stripes, %llu MiB "
        "blocks, slice %zu KiB, max-inflight %zu\",\n"
        "    \"foreground\": \"%.0f qps x %.0f s, %llu MiB reads\",\n"
        "    \"fg_protection_bound\": %.1f,\n"
        "    \"degraded_floor\": %.1f\n  },\n  \"benchmarks\": [\n",
        date, kStripes, static_cast<unsigned long long>(kBlock >> 20),
        kSlice >> 10, kMaxInflight, kFgQps, kFgDuration,
        static_cast<unsigned long long>(kFgReadSize >> 20),
        kFgProtectionBound, kDegradedFloor);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      // Simulated-time metrics are deterministic, so the row diff is
      // exact: any drift is a behavior change, not runner noise.
      std::fprintf(
          out,
          "    {\n"
          "      \"name\": \"%s\",\n"
          "      \"makespan_s\": %.4f,\n"
          "      \"completion_p50_s\": %.4f,\n"
          "      \"completion_p95_s\": %.4f,\n"
          "      \"completion_p99_s\": %.4f,\n"
          "      \"foreground_p99_s\": %.5f,\n"
          "      \"fg_p99_vs_idle\": %.4f,\n"
          "      \"degraded_p50_s\": %.5f,\n"
          "      \"degraded_p99_s\": %.5f,\n"
          "      \"repair_throughput_MBps\": %.3f,\n"
          "      \"max_queue_depth\": %zu\n    }%s\n",
          r.name.c_str(), r.out.makespan_s, r.out.completion_p50_s,
          r.out.completion_p95_s, r.out.completion_p99_s,
          r.out.foreground_p99_s, r.fg_p99_vs_idle, r.out.degraded_p50_s,
          r.out.degraded_p99_s, r.out.repair_throughput_bps / 8e6,
          r.out.max_queue_depth, i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  }
  return ok ? 0 : 2;
}
