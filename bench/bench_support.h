// Shared helpers for the figure-reproduction benches.
//
// Every bench prints the same series the corresponding paper figure shows,
// as a fixed-width text table, plus the headline reduction percentages the
// paper quotes. The EXPERIMENTS.md file records paper-vs-measured values.
#pragma once

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "repair/executor_sim.h"
#include "repair/planner.h"
#include "rs/rs_code.h"
#include "topology/placement.h"
#include "util/combinatorics.h"
#include "util/table.h"

namespace rpr::bench {

/// The six single-failure configurations of §5.1.1.
inline std::vector<rs::CodeConfig> single_failure_configs() {
  return {{4, 2}, {6, 2}, {8, 2}, {6, 3}, {8, 4}, {12, 4}};
}

/// The (n, k, z) non-worst multi-failure configurations of §5.1.2.
struct MultiConfig {
  rs::CodeConfig code;
  std::size_t z;  ///< number of simultaneous failures
};
inline std::vector<MultiConfig> multi_nonworst_configs() {
  return {{{6, 3}, 2}, {{8, 4}, 2}, {{8, 4}, 3}, {{12, 4}, 2}, {{12, 4}, 3}};
}

/// Worst-case (z = k) configurations of §5.1.2 with (n+k)/k > 3.
inline std::vector<MultiConfig> multi_worst_configs() {
  return {{{6, 2}, 2}, {{8, 2}, 2}, {{12, 4}, 4}};
}

inline std::string code_name(const rs::CodeConfig& c) {
  return "(" + std::to_string(c.n) + "," + std::to_string(c.k) + ")";
}
inline std::string code_name(const MultiConfig& m) {
  return "(" + std::to_string(m.code.n) + "," + std::to_string(m.code.k) +
         "," + std::to_string(m.z) + ")";
}

/// The paper's Simics setup (§5.1): 1 Gb/s node NICs as the inner-rack
/// bandwidth, wondershaper-throttled 0.1 Gb/s cross-rack, 256 MB blocks.
inline constexpr std::uint64_t kPaperBlock = 256ull << 20;

struct SweepStats {
  double avg = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = 0.0;
  std::size_t samples = 0;

  void add(double v) {
    avg = (avg * static_cast<double>(samples) + v) /
          static_cast<double>(samples + 1);
    ++samples;
    min = std::min(min, v);
    max = std::max(max, v);
  }
};

/// One simulated repair: returns {repair seconds, cross-rack blocks}.
struct RunPoint {
  double seconds = 0.0;
  double cross_blocks = 0.0;
};

inline RunPoint run_one(const repair::Planner& planner,
                        const rs::RSCode& code,
                        const topology::PlacedStripe& placed,
                        const std::vector<std::size_t>& failed,
                        const topology::NetworkParams& params,
                        std::uint64_t block = kPaperBlock) {
  repair::RepairProblem problem;
  problem.code = &code;
  problem.placement = &placed.placement;
  problem.block_size = block;
  problem.failed = failed;
  problem.choose_default_replacements();
  const auto planned = planner.plan(problem);
  const auto sim = repair::simulate(planned.plan, placed.cluster, params);
  return RunPoint{util::to_sec(sim.total_repair_time),
                  static_cast<double>(sim.cross_rack_bytes) /
                      static_cast<double>(block)};
}

/// Sweeps every single data-block failure position; returns time stats (s)
/// and traffic stats (blocks).
struct SingleSweep {
  SweepStats time;
  SweepStats traffic;
};
inline SingleSweep sweep_single(const repair::Planner& planner,
                                const rs::RSCode& code,
                                const topology::PlacedStripe& placed,
                                const topology::NetworkParams& params) {
  SingleSweep s;
  for (std::size_t f = 0; f < code.config().n; ++f) {
    const auto point = run_one(planner, code, placed, {f}, params);
    s.time.add(point.seconds);
    s.traffic.add(point.cross_blocks);
  }
  return s;
}

/// Sweeps failure-position combinations for z simultaneous failures over
/// all blocks (data and parity), as the paper's "all possible block
/// locations". `max_patterns` caps the enumeration for expensive backends
/// (0 = unlimited).
inline SingleSweep sweep_multi(const repair::Planner& planner,
                               const rs::RSCode& code,
                               const topology::PlacedStripe& placed,
                               std::size_t z,
                               const topology::NetworkParams& params,
                               std::size_t max_patterns = 0) {
  SingleSweep s;
  std::size_t seen = 0;
  util::for_each_combination(
      code.config().total(), z,
      [&](const std::vector<std::size_t>& failed) {
        if (max_patterns && seen >= max_patterns) return;
        ++seen;
        const auto point = run_one(planner, code, placed, failed, params);
        s.time.add(point.seconds);
        s.traffic.add(point.cross_blocks);
      });
  return s;
}

inline std::string pct_reduction(double baseline, double value) {
  return util::fmt((1.0 - value / baseline) * 100.0, 1) + "%";
}

/// Wall-clock extent of each repair phase (seconds) for one simulated
/// repair, via the obs probe: where the makespan goes between reading,
/// inner-rack aggregation, cross-rack pipelining and the final decode.
struct PhaseSeconds {
  double read = 0.0;
  double inner = 0.0;
  double cross = 0.0;
  double decode = 0.0;
  double makespan = 0.0;
};

inline PhaseSeconds phase_seconds(const repair::Planner& planner,
                                  const rs::RSCode& code,
                                  const topology::PlacedStripe& placed,
                                  const std::vector<std::size_t>& failed,
                                  const topology::NetworkParams& params,
                                  std::uint64_t block = kPaperBlock) {
  repair::RepairProblem problem;
  problem.code = &code;
  problem.placement = &placed.placement;
  problem.block_size = block;
  problem.failed = failed;
  problem.choose_default_replacements();
  const auto planned = planner.plan(problem);

  obs::MetricsRegistry reg;
  (void)repair::simulate(planned.plan, placed.cluster, params,
                         {&reg, nullptr});
  const auto span = [&reg](const char* phase) {
    const obs::Gauge* g =
        reg.find_gauge(std::string("sim.phase.") + phase + ".span_s");
    return g != nullptr ? g->value() : 0.0;
  };
  PhaseSeconds out;
  out.read = span("read");
  out.inner = span("inner");
  out.cross = span("cross");
  out.decode = span("decode");
  out.makespan = reg.gauge("sim.makespan_s").value();
  return out;
}

}  // namespace rpr::bench
