// Extension bench: one simulated year of cluster operation.
//
// Plays the same exponential failure trace (same seed) against three
// identical RS(8,4) clusters that differ only in repair scheme, and totals
// the operator's bill: failures survived, cross-rack repair traffic,
// aggregate and worst-case repair time, and how often repairs ran on the
// XOR fast path. This is the fleet-scale framing of the paper's
// motivation (§1).
#include <cstdio>

#include "bench_support.h"
#include "storage/trace.h"

int main() {
  using namespace rpr;

  const std::size_t objects = 20;
  storage::TraceParams trace;
  trace.node_mttf_hours = 24 * 30;     // aggressive MTTF to get a busy year
  trace.horizon_hours = 24 * 365;
  trace.seed = 2020;

  std::printf("Trace study — one simulated year, RS(8,4), %zu stripes, node "
              "MTTF %.0f days,\nidentical failure trace per scheme; repair "
              "costs from the 10:1 simulator\n\n",
              objects, trace.node_mttf_hours / 24);

  util::TextTable t({"scheme", "failures", "repairs", "cross GB",
                     "sum repair (s)", "max repair (s)", "xor-path"});
  for (const auto scheme : {repair::Scheme::kTraditional, repair::Scheme::kCar,
                            repair::Scheme::kRpr}) {
    storage::StorageOptions opts;
    opts.code = {8, 4};
    opts.block_size = 1 << 20;  // cost model scales linearly in block size
    opts.repair_scheme = scheme;
    opts.policy = topology::PlacementPolicy::kRpr;
    storage::StorageSystem sys(opts);

    util::Xoshiro256 rng(7);
    for (std::size_t i = 0; i < objects; ++i) {
      std::vector<std::uint8_t> obj(opts.code.n * opts.block_size);
      for (auto& b : obj) b = static_cast<std::uint8_t>(rng());
      (void)sys.put(obj);
    }

    const auto out = storage::run_failure_trace(sys, trace);
    const auto planner = repair::make_planner(scheme);
    t.add_row({planner->name(), std::to_string(out.failures),
               std::to_string(out.stripes_repaired),
               util::fmt(static_cast<double>(out.cross_rack_bytes) / 1e9, 2),
               util::fmt(util::to_sec(out.total_repair_time), 1),
               util::fmt(util::to_sec(out.max_repair_time), 2),
               util::fmt(out.xor_repair_fraction * 100, 0) + "%"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("shape check: same trace, same data — the scheme alone "
              "changes the yearly bill.\nRPR cuts cross-rack repair bytes "
              "roughly in half and repairs on the XOR path\nfor most "
              "single-data-block failures (the dominant failure class).\n");
  return 0;
}
