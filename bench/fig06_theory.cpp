// Fig. 6: theoretical total repair time, traditional vs RPR worst case,
// across RS codes, with t_i = 1 ms and t_c = 10 ms (paper §4.1, eqs. 10-13).
#include <cstdio>

#include "bench_support.h"
#include "repair/analysis.h"

int main() {
  using namespace rpr;
  namespace an = repair::analysis;

  const an::Params p{/*t_i=*/util::kNsPerMs, /*t_c=*/10 * util::kNsPerMs};

  std::printf("Fig. 6 — theoretical repair time (ms), t_i = 1 ms, "
              "t_c = 10 ms\n");
  std::printf("traditional: eq. (10) = n * t_c; "
              "RPR worst case: eq. (13) = (floor(log2 k)+1) t_i + "
              "(floor(log2 q)+1) t_c\n\n");

  util::TextTable t({"code", "q", "Tra (ms)", "RPR worst (ms)", "reduction"});
  for (const auto cfg : bench::single_failure_configs()) {
    const double tra = util::to_ms(an::traditional_time(cfg.n, p));
    const double rpr_t = util::to_ms(an::rpr_worst_time(cfg.n, cfg.k, p));
    t.add_row({bench::code_name(cfg), std::to_string(cfg.racks_when_full()),
               util::fmt(tra, 0), util::fmt(rpr_t, 0),
               bench::pct_reduction(tra, rpr_t)});
  }
  // Extend the trend like the figure does (growing n at fixed k).
  const std::size_t extra_n[] = {16, 20, 24};
  for (const std::size_t n : extra_n) {
    const rs::CodeConfig cfg{n, 4};
    const double tra = util::to_ms(an::traditional_time(cfg.n, p));
    const double rpr_t = util::to_ms(an::rpr_worst_time(cfg.n, cfg.k, p));
    t.add_row({bench::code_name(cfg), std::to_string(cfg.racks_when_full()),
               util::fmt(tra, 0), util::fmt(rpr_t, 0),
               bench::pct_reduction(tra, rpr_t)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("shape check: Tra grows linearly in n; RPR grows ~log2(q).\n");
  return 0;
}
