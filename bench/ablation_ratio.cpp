// Ablation: sensitivity to the cross:inner bandwidth ratio.
//
// The paper assumes 10:1 (production numbers) and measures 11.32:1 on EC2.
// This sweep varies the ratio from 1:1 to 20:1 at a fixed inner-rack
// bandwidth and reports the RPR-vs-traditional repair-time reduction for
// RS(8,4): the slower the cross-rack links, the more the rack-aware
// pipeline pays off.
#include <cstdio>

#include "bench_support.h"

int main() {
  using namespace rpr;
  const rs::CodeConfig cfg{12, 4};
  const rs::RSCode code(cfg);
  const auto placed =
      topology::make_placed_stripe(cfg, topology::PlacementPolicy::kRpr);
  const repair::TraditionalPlanner tra;
  const repair::CarPlanner car;
  const repair::RprPlanner rpr_planner;

  std::printf("Ablation — cross:inner bandwidth ratio sweep, RS(12,4), "
              "single data-block\nfailures (averaged), 256 MB blocks, inner "
              "fixed at 1 Gb/s\n\n");

  util::TextTable t({"ratio", "Tra (s)", "CAR (s)", "RPR (s)", "RPR vs Tra",
                     "RPR vs CAR"});
  for (const double ratio : {1.0, 2.0, 5.0, 10.0, 11.32, 20.0}) {
    topology::NetworkParams params;
    params.inner = util::Bandwidth::gbps(1);
    params.cross = util::Bandwidth::gbps(1.0 / ratio);
    const auto s_tra = bench::sweep_single(tra, code, placed, params);
    const auto s_car = bench::sweep_single(car, code, placed, params);
    const auto s_rpr = bench::sweep_single(rpr_planner, code, placed, params);
    t.add_row({util::fmt(ratio, 2) + ":1", util::fmt(s_tra.time.avg, 1),
               util::fmt(s_car.time.avg, 1), util::fmt(s_rpr.time.avg, 1),
               bench::pct_reduction(s_tra.time.avg, s_rpr.time.avg),
               bench::pct_reduction(s_car.time.avg, s_rpr.time.avg)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("shape check: RPR's advantage grows with the ratio; at 1:1 "
              "rack-awareness\nbuys little because cross-rack links are no "
              "longer scarce.\n");
  return 0;
}
