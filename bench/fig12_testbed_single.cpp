// Fig. 12: total repair time for traditional (Tra), CAR and RPR repair of
// single-block failures on the threaded testbed with the paper's Table-1
// EC2 bandwidths (regions as racks), real bytes and real GF decoding.
//
// Paper result: RPR cuts total repair time by 67.6% on average (up to
// 80.8%) vs traditional, and 37.2% on average (up to 50.3%) vs CAR — a
// wider CAR gap than the simulator because the real (unoptimized) decode
// path is ~4-8x slower than the XOR path.
#include <cstdio>

#include "testbed_support.h"

int main() {
  using namespace rpr;
  const repair::TraditionalPlanner tra;
  const repair::CarPlanner car;

  std::printf("Fig. 12 — total repair time (wall ms, links x%.0f), "
              "single-block failure,\ntestbed with Table-1 region "
              "bandwidths, %u MiB blocks, sampled positions\n\n",
              bench::kTestbedScale,
              unsigned(bench::kTestbedBlock >> 20));

  util::TextTable t({"code", "Tra (ms)", "CAR (ms)", "RPR (ms)",
                     "RPR vs Tra", "RPR vs CAR"});
  double sum_vs_tra = 0.0, sum_vs_car = 0.0;
  double max_vs_tra = 0.0, max_vs_car = 0.0;
  std::size_t rows = 0;
  for (const auto cfg : bench::single_failure_configs()) {
    const rs::RSCode code(cfg);
    const auto placed =
        topology::make_placed_stripe(cfg, topology::PlacementPolicy::kRpr);
    const auto rpr_planner = bench::hetero_rpr_planner(placed.cluster.racks());
    const auto stripe = bench::testbed_stripe(code);

    // Up to 3 evenly-spaced data-block positions, averaged.
    double t_tra = 0, t_car = 0, t_rpr = 0;
    const std::size_t positions = std::min<std::size_t>(cfg.n, 3);
    for (std::size_t i = 0; i < positions; ++i) {
      const std::size_t f = i * cfg.n / positions;
      t_tra += bench::run_testbed_ms(tra, code, placed, {f}, stripe);
      t_car += bench::run_testbed_ms(car, code, placed, {f}, stripe);
      t_rpr += bench::run_testbed_ms(rpr_planner, code, placed, {f}, stripe);
    }
    t_tra /= static_cast<double>(positions);
    t_car /= static_cast<double>(positions);
    t_rpr /= static_cast<double>(positions);

    const double vs_tra = 1.0 - t_rpr / t_tra;
    const double vs_car = 1.0 - t_rpr / t_car;
    sum_vs_tra += vs_tra;
    sum_vs_car += vs_car;
    max_vs_tra = std::max(max_vs_tra, vs_tra);
    max_vs_car = std::max(max_vs_car, vs_car);
    ++rows;
    t.add_row({bench::code_name(cfg), util::fmt(t_tra, 1),
               util::fmt(t_car, 1), util::fmt(t_rpr, 1),
               util::fmt(vs_tra * 100, 1) + "%",
               util::fmt(vs_car * 100, 1) + "%"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("measured: RPR vs Tra avg %.1f%% (max %.1f%%); RPR vs CAR avg "
              "%.1f%% (max %.1f%%)\n",
              sum_vs_tra / static_cast<double>(rows) * 100, max_vs_tra * 100,
              sum_vs_car / static_cast<double>(rows) * 100, max_vs_car * 100);
  std::printf("paper:    RPR vs Tra avg 67.6%% (max 80.8%%); RPR vs CAR avg "
              "37.2%% (max 50.3%%)\n");
  return 0;
}
