file(REMOVE_RECURSE
  "librpr_matrix.a"
)
