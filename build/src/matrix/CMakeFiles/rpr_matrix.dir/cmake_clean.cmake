file(REMOVE_RECURSE
  "CMakeFiles/rpr_matrix.dir/matrix.cpp.o"
  "CMakeFiles/rpr_matrix.dir/matrix.cpp.o.d"
  "librpr_matrix.a"
  "librpr_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpr_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
