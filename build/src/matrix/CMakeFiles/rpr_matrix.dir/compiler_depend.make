# Empty compiler generated dependencies file for rpr_matrix.
# This may be replaced when dependencies are built.
