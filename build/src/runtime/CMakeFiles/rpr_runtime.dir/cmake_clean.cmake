file(REMOVE_RECURSE
  "CMakeFiles/rpr_runtime.dir/region_net.cpp.o"
  "CMakeFiles/rpr_runtime.dir/region_net.cpp.o.d"
  "CMakeFiles/rpr_runtime.dir/testbed.cpp.o"
  "CMakeFiles/rpr_runtime.dir/testbed.cpp.o.d"
  "librpr_runtime.a"
  "librpr_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
