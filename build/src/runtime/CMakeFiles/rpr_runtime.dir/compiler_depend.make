# Empty compiler generated dependencies file for rpr_runtime.
# This may be replaced when dependencies are built.
