file(REMOVE_RECURSE
  "librpr_runtime.a"
)
