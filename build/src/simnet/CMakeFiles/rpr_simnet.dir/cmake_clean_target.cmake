file(REMOVE_RECURSE
  "librpr_simnet.a"
)
