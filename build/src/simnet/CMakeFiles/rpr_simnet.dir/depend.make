# Empty dependencies file for rpr_simnet.
# This may be replaced when dependencies are built.
