file(REMOVE_RECURSE
  "CMakeFiles/rpr_simnet.dir/fluid.cpp.o"
  "CMakeFiles/rpr_simnet.dir/fluid.cpp.o.d"
  "CMakeFiles/rpr_simnet.dir/simnet.cpp.o"
  "CMakeFiles/rpr_simnet.dir/simnet.cpp.o.d"
  "CMakeFiles/rpr_simnet.dir/trace_export.cpp.o"
  "CMakeFiles/rpr_simnet.dir/trace_export.cpp.o.d"
  "librpr_simnet.a"
  "librpr_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpr_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
