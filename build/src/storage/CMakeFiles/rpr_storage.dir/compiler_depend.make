# Empty compiler generated dependencies file for rpr_storage.
# This may be replaced when dependencies are built.
