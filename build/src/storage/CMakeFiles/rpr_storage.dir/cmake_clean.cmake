file(REMOVE_RECURSE
  "CMakeFiles/rpr_storage.dir/failure.cpp.o"
  "CMakeFiles/rpr_storage.dir/failure.cpp.o.d"
  "CMakeFiles/rpr_storage.dir/storage_system.cpp.o"
  "CMakeFiles/rpr_storage.dir/storage_system.cpp.o.d"
  "CMakeFiles/rpr_storage.dir/trace.cpp.o"
  "CMakeFiles/rpr_storage.dir/trace.cpp.o.d"
  "librpr_storage.a"
  "librpr_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpr_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
