file(REMOVE_RECURSE
  "librpr_storage.a"
)
