# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("gf")
subdirs("matrix")
subdirs("rs")
subdirs("topology")
subdirs("simnet")
subdirs("repair")
subdirs("runtime")
subdirs("storage")
subdirs("cli")
subdirs("net")
