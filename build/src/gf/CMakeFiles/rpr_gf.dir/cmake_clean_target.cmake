file(REMOVE_RECURSE
  "librpr_gf.a"
)
