# Empty compiler generated dependencies file for rpr_gf.
# This may be replaced when dependencies are built.
