file(REMOVE_RECURSE
  "CMakeFiles/rpr_gf.dir/gf65536.cpp.o"
  "CMakeFiles/rpr_gf.dir/gf65536.cpp.o.d"
  "CMakeFiles/rpr_gf.dir/gf_region.cpp.o"
  "CMakeFiles/rpr_gf.dir/gf_region.cpp.o.d"
  "librpr_gf.a"
  "librpr_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpr_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
