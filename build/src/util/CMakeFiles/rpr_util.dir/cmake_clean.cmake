file(REMOVE_RECURSE
  "CMakeFiles/rpr_util.dir/table.cpp.o"
  "CMakeFiles/rpr_util.dir/table.cpp.o.d"
  "librpr_util.a"
  "librpr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
