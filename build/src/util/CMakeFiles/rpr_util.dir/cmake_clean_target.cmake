file(REMOVE_RECURSE
  "librpr_util.a"
)
