# Empty compiler generated dependencies file for rpr_util.
# This may be replaced when dependencies are built.
