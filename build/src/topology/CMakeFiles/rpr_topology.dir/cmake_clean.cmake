file(REMOVE_RECURSE
  "CMakeFiles/rpr_topology.dir/placement.cpp.o"
  "CMakeFiles/rpr_topology.dir/placement.cpp.o.d"
  "librpr_topology.a"
  "librpr_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpr_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
