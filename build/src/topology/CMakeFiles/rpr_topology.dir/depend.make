# Empty dependencies file for rpr_topology.
# This may be replaced when dependencies are built.
