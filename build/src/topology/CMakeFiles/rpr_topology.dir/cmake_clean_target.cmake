file(REMOVE_RECURSE
  "librpr_topology.a"
)
