# Empty dependencies file for rpr_rs.
# This may be replaced when dependencies are built.
