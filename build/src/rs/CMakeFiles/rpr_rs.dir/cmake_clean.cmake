file(REMOVE_RECURSE
  "CMakeFiles/rpr_rs.dir/partial.cpp.o"
  "CMakeFiles/rpr_rs.dir/partial.cpp.o.d"
  "CMakeFiles/rpr_rs.dir/rs_code.cpp.o"
  "CMakeFiles/rpr_rs.dir/rs_code.cpp.o.d"
  "CMakeFiles/rpr_rs.dir/wide_code.cpp.o"
  "CMakeFiles/rpr_rs.dir/wide_code.cpp.o.d"
  "librpr_rs.a"
  "librpr_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpr_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
