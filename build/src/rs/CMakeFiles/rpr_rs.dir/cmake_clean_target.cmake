file(REMOVE_RECURSE
  "librpr_rs.a"
)
