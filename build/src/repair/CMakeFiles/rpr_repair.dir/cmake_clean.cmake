file(REMOVE_RECURSE
  "CMakeFiles/rpr_repair.dir/analysis.cpp.o"
  "CMakeFiles/rpr_repair.dir/analysis.cpp.o.d"
  "CMakeFiles/rpr_repair.dir/car.cpp.o"
  "CMakeFiles/rpr_repair.dir/car.cpp.o.d"
  "CMakeFiles/rpr_repair.dir/executor_data.cpp.o"
  "CMakeFiles/rpr_repair.dir/executor_data.cpp.o.d"
  "CMakeFiles/rpr_repair.dir/executor_sim.cpp.o"
  "CMakeFiles/rpr_repair.dir/executor_sim.cpp.o.d"
  "CMakeFiles/rpr_repair.dir/fleet.cpp.o"
  "CMakeFiles/rpr_repair.dir/fleet.cpp.o.d"
  "CMakeFiles/rpr_repair.dir/plan.cpp.o"
  "CMakeFiles/rpr_repair.dir/plan.cpp.o.d"
  "CMakeFiles/rpr_repair.dir/planner.cpp.o"
  "CMakeFiles/rpr_repair.dir/planner.cpp.o.d"
  "CMakeFiles/rpr_repair.dir/reduction.cpp.o"
  "CMakeFiles/rpr_repair.dir/reduction.cpp.o.d"
  "CMakeFiles/rpr_repair.dir/rpr.cpp.o"
  "CMakeFiles/rpr_repair.dir/rpr.cpp.o.d"
  "CMakeFiles/rpr_repair.dir/traditional.cpp.o"
  "CMakeFiles/rpr_repair.dir/traditional.cpp.o.d"
  "librpr_repair.a"
  "librpr_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpr_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
