
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repair/analysis.cpp" "src/repair/CMakeFiles/rpr_repair.dir/analysis.cpp.o" "gcc" "src/repair/CMakeFiles/rpr_repair.dir/analysis.cpp.o.d"
  "/root/repo/src/repair/car.cpp" "src/repair/CMakeFiles/rpr_repair.dir/car.cpp.o" "gcc" "src/repair/CMakeFiles/rpr_repair.dir/car.cpp.o.d"
  "/root/repo/src/repair/executor_data.cpp" "src/repair/CMakeFiles/rpr_repair.dir/executor_data.cpp.o" "gcc" "src/repair/CMakeFiles/rpr_repair.dir/executor_data.cpp.o.d"
  "/root/repo/src/repair/executor_sim.cpp" "src/repair/CMakeFiles/rpr_repair.dir/executor_sim.cpp.o" "gcc" "src/repair/CMakeFiles/rpr_repair.dir/executor_sim.cpp.o.d"
  "/root/repo/src/repair/fleet.cpp" "src/repair/CMakeFiles/rpr_repair.dir/fleet.cpp.o" "gcc" "src/repair/CMakeFiles/rpr_repair.dir/fleet.cpp.o.d"
  "/root/repo/src/repair/plan.cpp" "src/repair/CMakeFiles/rpr_repair.dir/plan.cpp.o" "gcc" "src/repair/CMakeFiles/rpr_repair.dir/plan.cpp.o.d"
  "/root/repo/src/repair/planner.cpp" "src/repair/CMakeFiles/rpr_repair.dir/planner.cpp.o" "gcc" "src/repair/CMakeFiles/rpr_repair.dir/planner.cpp.o.d"
  "/root/repo/src/repair/reduction.cpp" "src/repair/CMakeFiles/rpr_repair.dir/reduction.cpp.o" "gcc" "src/repair/CMakeFiles/rpr_repair.dir/reduction.cpp.o.d"
  "/root/repo/src/repair/rpr.cpp" "src/repair/CMakeFiles/rpr_repair.dir/rpr.cpp.o" "gcc" "src/repair/CMakeFiles/rpr_repair.dir/rpr.cpp.o.d"
  "/root/repo/src/repair/traditional.cpp" "src/repair/CMakeFiles/rpr_repair.dir/traditional.cpp.o" "gcc" "src/repair/CMakeFiles/rpr_repair.dir/traditional.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rs/CMakeFiles/rpr_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rpr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/rpr_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rpr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/rpr_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/rpr_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
