# Empty compiler generated dependencies file for rpr_repair.
# This may be replaced when dependencies are built.
