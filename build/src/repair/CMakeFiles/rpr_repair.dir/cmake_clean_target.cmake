file(REMOVE_RECURSE
  "librpr_repair.a"
)
