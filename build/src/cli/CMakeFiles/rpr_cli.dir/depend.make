# Empty dependencies file for rpr_cli.
# This may be replaced when dependencies are built.
