file(REMOVE_RECURSE
  "CMakeFiles/rpr_cli.dir/archive.cpp.o"
  "CMakeFiles/rpr_cli.dir/archive.cpp.o.d"
  "librpr_cli.a"
  "librpr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
