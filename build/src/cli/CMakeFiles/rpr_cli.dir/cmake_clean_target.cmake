file(REMOVE_RECURSE
  "librpr_cli.a"
)
