file(REMOVE_RECURSE
  "librpr_net.a"
)
