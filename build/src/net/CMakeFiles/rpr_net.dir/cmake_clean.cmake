file(REMOVE_RECURSE
  "CMakeFiles/rpr_net.dir/message.cpp.o"
  "CMakeFiles/rpr_net.dir/message.cpp.o.d"
  "CMakeFiles/rpr_net.dir/socket.cpp.o"
  "CMakeFiles/rpr_net.dir/socket.cpp.o.d"
  "CMakeFiles/rpr_net.dir/tcp_runtime.cpp.o"
  "CMakeFiles/rpr_net.dir/tcp_runtime.cpp.o.d"
  "librpr_net.a"
  "librpr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
