# Empty dependencies file for rpr_net.
# This may be replaced when dependencies are built.
