# Empty compiler generated dependencies file for multi_failure.
# This may be replaced when dependencies are built.
