file(REMOVE_RECURSE
  "CMakeFiles/multi_failure.dir/multi_failure.cpp.o"
  "CMakeFiles/multi_failure.dir/multi_failure.cpp.o.d"
  "multi_failure"
  "multi_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
