file(REMOVE_RECURSE
  "CMakeFiles/degraded_reads.dir/degraded_reads.cpp.o"
  "CMakeFiles/degraded_reads.dir/degraded_reads.cpp.o.d"
  "degraded_reads"
  "degraded_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degraded_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
