# Empty dependencies file for degraded_reads.
# This may be replaced when dependencies are built.
