file(REMOVE_RECURSE
  "CMakeFiles/wide_stripe.dir/wide_stripe.cpp.o"
  "CMakeFiles/wide_stripe.dir/wide_stripe.cpp.o.d"
  "wide_stripe"
  "wide_stripe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_stripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
