# Empty compiler generated dependencies file for wide_stripe.
# This may be replaced when dependencies are built.
