# Empty compiler generated dependencies file for degraded_read_test.
# This may be replaced when dependencies are built.
