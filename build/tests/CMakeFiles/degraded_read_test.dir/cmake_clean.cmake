file(REMOVE_RECURSE
  "CMakeFiles/degraded_read_test.dir/degraded_read_test.cpp.o"
  "CMakeFiles/degraded_read_test.dir/degraded_read_test.cpp.o.d"
  "degraded_read_test"
  "degraded_read_test.pdb"
  "degraded_read_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degraded_read_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
