# Empty dependencies file for gf_region_test.
# This may be replaced when dependencies are built.
