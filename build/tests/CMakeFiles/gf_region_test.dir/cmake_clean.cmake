file(REMOVE_RECURSE
  "CMakeFiles/gf_region_test.dir/gf_region_test.cpp.o"
  "CMakeFiles/gf_region_test.dir/gf_region_test.cpp.o.d"
  "gf_region_test"
  "gf_region_test.pdb"
  "gf_region_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
