# Empty compiler generated dependencies file for wide_code_test.
# This may be replaced when dependencies are built.
