file(REMOVE_RECURSE
  "CMakeFiles/wide_code_test.dir/wide_code_test.cpp.o"
  "CMakeFiles/wide_code_test.dir/wide_code_test.cpp.o.d"
  "wide_code_test"
  "wide_code_test.pdb"
  "wide_code_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_code_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
