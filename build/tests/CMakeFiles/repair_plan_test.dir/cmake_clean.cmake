file(REMOVE_RECURSE
  "CMakeFiles/repair_plan_test.dir/repair_plan_test.cpp.o"
  "CMakeFiles/repair_plan_test.dir/repair_plan_test.cpp.o.d"
  "repair_plan_test"
  "repair_plan_test.pdb"
  "repair_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
