file(REMOVE_RECURSE
  "CMakeFiles/model_equivalence_test.dir/model_equivalence_test.cpp.o"
  "CMakeFiles/model_equivalence_test.dir/model_equivalence_test.cpp.o.d"
  "model_equivalence_test"
  "model_equivalence_test.pdb"
  "model_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
