# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gf_test[1]_include.cmake")
include("/root/repo/build/tests/gf_region_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/rs_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/repair_plan_test[1]_include.cmake")
include("/root/repo/build/tests/repair_planner_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/fleet_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/archive_test[1]_include.cmake")
include("/root/repo/build/tests/reduction_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/fluid_test[1]_include.cmake")
include("/root/repo/build/tests/gf65536_test[1]_include.cmake")
include("/root/repo/build/tests/wide_code_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/trace_export_test[1]_include.cmake")
include("/root/repo/build/tests/degraded_read_test[1]_include.cmake")
include("/root/repo/build/tests/model_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
