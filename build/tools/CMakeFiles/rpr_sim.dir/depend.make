# Empty dependencies file for rpr_sim.
# This may be replaced when dependencies are built.
