file(REMOVE_RECURSE
  "CMakeFiles/rpr_sim.dir/rpr_sim.cpp.o"
  "CMakeFiles/rpr_sim.dir/rpr_sim.cpp.o.d"
  "rpr_sim"
  "rpr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
