# Empty dependencies file for rpr_archive.
# This may be replaced when dependencies are built.
