file(REMOVE_RECURSE
  "CMakeFiles/rpr_archive.dir/rpr_archive.cpp.o"
  "CMakeFiles/rpr_archive.dir/rpr_archive.cpp.o.d"
  "rpr_archive"
  "rpr_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpr_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
