# Empty compiler generated dependencies file for fig11_worst_time.
# This may be replaced when dependencies are built.
