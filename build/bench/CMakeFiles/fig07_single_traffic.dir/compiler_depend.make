# Empty compiler generated dependencies file for fig07_single_traffic.
# This may be replaced when dependencies are built.
