file(REMOVE_RECURSE
  "CMakeFiles/fig07_single_traffic.dir/fig07_single_traffic.cpp.o"
  "CMakeFiles/fig07_single_traffic.dir/fig07_single_traffic.cpp.o.d"
  "fig07_single_traffic"
  "fig07_single_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_single_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
