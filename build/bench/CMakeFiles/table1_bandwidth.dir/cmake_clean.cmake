file(REMOVE_RECURSE
  "CMakeFiles/table1_bandwidth.dir/table1_bandwidth.cpp.o"
  "CMakeFiles/table1_bandwidth.dir/table1_bandwidth.cpp.o.d"
  "table1_bandwidth"
  "table1_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
