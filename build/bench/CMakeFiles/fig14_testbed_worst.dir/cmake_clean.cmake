file(REMOVE_RECURSE
  "CMakeFiles/fig14_testbed_worst.dir/fig14_testbed_worst.cpp.o"
  "CMakeFiles/fig14_testbed_worst.dir/fig14_testbed_worst.cpp.o.d"
  "fig14_testbed_worst"
  "fig14_testbed_worst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_testbed_worst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
