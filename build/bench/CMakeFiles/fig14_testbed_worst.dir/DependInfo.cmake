
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig14_testbed_worst.cpp" "bench/CMakeFiles/fig14_testbed_worst.dir/fig14_testbed_worst.cpp.o" "gcc" "bench/CMakeFiles/fig14_testbed_worst.dir/fig14_testbed_worst.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/rpr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rpr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/rpr_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/rpr_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rpr_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/rs/CMakeFiles/rpr_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/rpr_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/rpr_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
