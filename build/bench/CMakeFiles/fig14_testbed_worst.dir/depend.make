# Empty dependencies file for fig14_testbed_worst.
# This may be replaced when dependencies are built.
