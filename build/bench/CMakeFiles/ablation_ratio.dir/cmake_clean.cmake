file(REMOVE_RECURSE
  "CMakeFiles/ablation_ratio.dir/ablation_ratio.cpp.o"
  "CMakeFiles/ablation_ratio.dir/ablation_ratio.cpp.o.d"
  "ablation_ratio"
  "ablation_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
