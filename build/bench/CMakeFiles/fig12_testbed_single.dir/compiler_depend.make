# Empty compiler generated dependencies file for fig12_testbed_single.
# This may be replaced when dependencies are built.
