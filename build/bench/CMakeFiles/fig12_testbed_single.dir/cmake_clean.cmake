file(REMOVE_RECURSE
  "CMakeFiles/fig12_testbed_single.dir/fig12_testbed_single.cpp.o"
  "CMakeFiles/fig12_testbed_single.dir/fig12_testbed_single.cpp.o.d"
  "fig12_testbed_single"
  "fig12_testbed_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_testbed_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
