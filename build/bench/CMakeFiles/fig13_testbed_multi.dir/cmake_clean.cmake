file(REMOVE_RECURSE
  "CMakeFiles/fig13_testbed_multi.dir/fig13_testbed_multi.cpp.o"
  "CMakeFiles/fig13_testbed_multi.dir/fig13_testbed_multi.cpp.o.d"
  "fig13_testbed_multi"
  "fig13_testbed_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_testbed_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
