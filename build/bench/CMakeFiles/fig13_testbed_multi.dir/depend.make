# Empty dependencies file for fig13_testbed_multi.
# This may be replaced when dependencies are built.
