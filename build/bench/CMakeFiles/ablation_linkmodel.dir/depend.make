# Empty dependencies file for ablation_linkmodel.
# This may be replaced when dependencies are built.
