file(REMOVE_RECURSE
  "CMakeFiles/ablation_linkmodel.dir/ablation_linkmodel.cpp.o"
  "CMakeFiles/ablation_linkmodel.dir/ablation_linkmodel.cpp.o.d"
  "ablation_linkmodel"
  "ablation_linkmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_linkmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
