# Empty compiler generated dependencies file for fig08_single_time.
# This may be replaced when dependencies are built.
