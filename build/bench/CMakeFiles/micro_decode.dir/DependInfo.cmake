
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_decode.cpp" "bench/CMakeFiles/micro_decode.dir/micro_decode.cpp.o" "gcc" "bench/CMakeFiles/micro_decode.dir/micro_decode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rs/CMakeFiles/rpr_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/rpr_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/rpr_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
