# Empty compiler generated dependencies file for fig09_multi_time.
# This may be replaced when dependencies are built.
