file(REMOVE_RECURSE
  "CMakeFiles/fig06_theory.dir/fig06_theory.cpp.o"
  "CMakeFiles/fig06_theory.dir/fig06_theory.cpp.o.d"
  "fig06_theory"
  "fig06_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
