# Empty dependencies file for fig06_theory.
# This may be replaced when dependencies are built.
