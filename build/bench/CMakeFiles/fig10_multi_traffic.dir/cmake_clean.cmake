file(REMOVE_RECURSE
  "CMakeFiles/fig10_multi_traffic.dir/fig10_multi_traffic.cpp.o"
  "CMakeFiles/fig10_multi_traffic.dir/fig10_multi_traffic.cpp.o.d"
  "fig10_multi_traffic"
  "fig10_multi_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multi_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
