# Empty compiler generated dependencies file for node_recovery.
# This may be replaced when dependencies are built.
