file(REMOVE_RECURSE
  "CMakeFiles/node_recovery.dir/node_recovery.cpp.o"
  "CMakeFiles/node_recovery.dir/node_recovery.cpp.o.d"
  "node_recovery"
  "node_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
